"""Forwarding-plane model of a physical packet switch in ShareBackup.

This is the piece that closes the loop between the control plane and the
data plane: a :class:`PacketSwitchModel` is a *physical* switch serving a
*logical* identity, holding the preloaded combined table of its failure
group, and forwarding packets over the *actual circuit-switch wiring*
(not the logical topology).  Walking a packet host-to-host through these
models — before and after arbitrary failovers — is the reproduction's
end-to-end proof that live impersonation works: same tables, same VLAN
tags, new physical switch, identical forwarding.

The pipeline per packet:

1. look up the egress *logical* port in the combined table (VLAN-aware);
2. map the logical port to a physical interface via the identity's port
   map (the rotation of :mod:`repro.core.impersonation` at layer 2;
   identity everywhere else);
3. hand the packet to whatever device the circuit layer currently
   connects that interface to;
4. aggregation switches strip the VLAN tag when forwarding downward
   (the tag's job — selecting the per-edge out-bound entries — is done).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..routing.base import LookupMiss, Packet, RoutingTable
from ..topology.fattree import host_name
from .impersonation import agg_downlink_interface, edge_uplink_interface
from .sharebackup import ShareBackupNetwork

__all__ = ["PacketSwitchModel", "ForwardingError", "PhysicalForwarder"]


class ForwardingError(Exception):
    """A packet could not be forwarded (miss, dead wire, loop)."""


@dataclass
class PacketSwitchModel:
    """A physical switch bound to a logical identity with a preloaded table."""

    physical_name: str
    identity: str  # logical slot currently served, e.g. "E.2.1"
    table: RoutingTable
    net: ShareBackupNetwork

    @property
    def _role(self) -> str:
        return {"E": "edge", "A": "aggregation", "C": "core"}[self.identity[0]]

    @property
    def _identity_index(self) -> int:
        return int(self.identity.split(".")[-1])

    # ------------------------------------------------------------------

    def physical_interface(self, logical_port: str) -> tuple:
        """The identity-dependent logical-port → physical-interface map."""
        half = self.net.half
        idx = self._identity_index
        role = self._role
        if role == "edge":
            if logical_port.startswith("host"):
                return ("host", int(logical_port[4:]))
            if logical_port.startswith("up"):
                agg = int(logical_port[2:])
                return ("up", edge_uplink_interface(idx, agg, half))
        elif role == "aggregation":
            if logical_port.startswith("down"):
                edge = int(logical_port[4:])
                return ("down", agg_downlink_interface(idx, edge, half))
            if logical_port.startswith("up"):
                return ("up", int(logical_port[2:]))
        elif role == "core":
            if logical_port.startswith("pod"):
                return ("pod", int(logical_port[3:]))
        raise ForwardingError(
            f"{self.identity}: cannot map logical port {logical_port!r}"
        )

    def forward(self, packet: Packet) -> tuple[str, tuple]:
        """One forwarding step: table lookup, port map, circuit traversal.

        Returns the next device and the interface it receives the packet
        on.  Mutates ``packet.vlan`` for the agg-strips-downward rule.
        """
        if not self.net.physical_health.get(self.physical_name, False):
            raise ForwardingError(f"{self.physical_name} is dead")
        try:
            logical_port = self.table.lookup(packet)
        except LookupMiss as exc:
            raise ForwardingError(str(exc)) from exc
        iface = self.physical_interface(logical_port)
        far = self.net.physical_neighbor(self.physical_name, iface)
        if far is None:
            raise ForwardingError(
                f"{self.physical_name}{iface}: circuit is dark "
                f"(logical port {logical_port})"
            )
        if self._role == "aggregation" and logical_port.startswith("down"):
            packet.vlan = None  # VLAN terminates at the top of the pod tree
        return far


class PhysicalForwarder:
    """Walks packets through the physical ShareBackup network end to end."""

    def __init__(
        self,
        net: ShareBackupNetwork,
        tables: dict[str, RoutingTable],
        max_hops: int = 12,
    ) -> None:
        """``tables`` maps *group ids* to the group's preloaded combined
        table — the same object is deliberately shared by every switch of
        the group, as in the real design."""
        self.net = net
        self.tables = tables
        self.max_hops = max_hops

    def model_for(self, logical: str) -> PacketSwitchModel:
        group = self.net.group_of(logical)
        return PacketSwitchModel(
            physical_name=group.physical_of(logical),
            identity=logical,
            table=self.tables[group.group_id],
            net=self.net,
        )

    def send(
        self, src_host: str, dst_host: str, vlan_tagging: bool = True
    ) -> list[str]:
        """Deliver one packet; returns the device trail (logical names).

        The host-side stack: build the packet from the topology's address
        plan and tag it with the source edge's VLAN iff the destination
        is outside the source rack (the tagging convention of §4.3).
        """
        tree = self.net.logical
        src_addr = tree.nodes[src_host].attrs["address"]
        dst_addr = tree.nodes[dst_host].attrs["address"]
        _, sp, se, _ = src_host.split(".")
        _, dp, de, _ = dst_host.split(".")
        same_rack = (sp, se) == (dp, de)
        routing = None
        vlan = None
        if vlan_tagging and not same_rack:
            from ..routing.twolevel import TwoLevelRouting

            routing = TwoLevelRouting(tree)
            vlan = routing.vlan_of_edge(int(sp), int(se))
        packet = Packet(src_addr, dst_addr, vlan=vlan)

        # The host's NIC wire leads (through layer-1 circuits) to whatever
        # physically serves its edge slot.
        current = self.net.physical_neighbor(src_host, ("nic", 0))
        if current is None:
            raise ForwardingError(f"{src_host}: access circuit is dark")
        trail = [src_host]
        for _hop in range(self.max_hops):
            device, iface = current
            if device.startswith("H."):
                trail.append(device)
                if device != dst_host:
                    raise ForwardingError(
                        f"delivered to {device}, expected {dst_host} (trail {trail})"
                    )
                return trail
            logical = self._identity_of(device)
            trail.append(logical)
            model = PacketSwitchModel(
                physical_name=device,
                identity=logical,
                table=self.tables[self.net.group_of(logical).group_id],
                net=self.net,
            )
            current = model.forward(packet)
        raise ForwardingError(f"forwarding loop: {trail}")

    def _identity_of(self, physical: str) -> str:
        for group in self.net.groups.values():
            logical = group.logical_of(physical)
            if logical is not None:
                return logical
        raise ForwardingError(f"{physical} serves no logical slot")
