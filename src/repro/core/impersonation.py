"""Live impersonation of failed switches (paper Section 4.3).

A backup switch that physically replaces a failed switch must also
*behave* like it — same forwarding — with zero table-installation delay.
ShareBackup therefore preloads, on every switch of a failure group, the
**combined routing table** of the whole group:

* **core groups** — all core switches share one table (``10.p/16 →
  pod-facing port``), so the combined table *is* that table;
* **aggregation groups** — all aggregation switches of a pod share one
  table, same story;
* **edge groups** — edge switches differ in their out-bound entries, so
  each edge's out-bound entries are tagged with a per-edge VLAN id and
  the union is stored.  Hosts tag out-going packets with their edge
  switch's VLAN id, so whichever physical switch serves the slot,
  matching the VLAN selects the correct per-edge entries.  The combined
  edge table has ``k/2`` in-bound + ``(k/2)²`` out-bound entries —
  **1056 for k = 64**, comfortably within commodity TCAM (the paper's
  §4.3 sizing claim, asserted in the tests).

Two conventions make the single-TCAM realisation work (documented at
:mod:`repro.routing.twolevel`): hosts only tag packets leaving their own
rack subnet, and aggregation switches strip the tag when forwarding
downward.

**Port-map subtlety** (a detail the paper leaves implicit): layer-2
circuit switches use rotational internal wiring, so the *physical*
interface that reaches "aggregation switch x" depends on which edge
slot a switch is serving (and symmetrically for aggregation-to-edge).
The backup inherits the *failed switch's* positional semantics exactly —
circuits re-point, cables don't move — so the preloaded table entries
remain valid verbatim; the switch only needs to know *which identity it
serves* to map logical ports ("up2") to physical interfaces, which is a
single register write, not a TCAM update.  :func:`edge_uplink_interface`
and :func:`agg_downlink_interface` are that port map, and the tests
verify them against actual circuit traversal.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..routing.base import RoutingTable
from ..routing.twolevel import TwoLevelRouting
from ..topology.fattree import FatTree

__all__ = [
    "ImpersonationTables",
    "edge_uplink_interface",
    "agg_downlink_interface",
    "combined_edge_entry_count",
    "DEFAULT_TCAM_CAPACITY",
]

#: Conservative commodity TCAM size (entries); real devices hold 2k–32k.
DEFAULT_TCAM_CAPACITY = 2048


def edge_uplink_interface(edge_index: int, agg_index: int, half: int) -> int:
    """Physical up-interface of edge slot ``edge_index`` that reaches
    aggregation switch ``agg_index``.

    Layer-2 circuit switch ``j`` connects edge ``m`` to aggregation
    ``(m + j) mod k/2``, so reaching aggregation ``x`` from edge ``m``
    uses interface ``(x − m) mod k/2``.
    """
    return (agg_index - edge_index) % half


def agg_downlink_interface(agg_index: int, edge_index: int, half: int) -> int:
    """Physical down-interface of aggregation slot ``agg_index`` that
    reaches edge switch ``edge_index`` (inverse rotation)."""
    return (agg_index - edge_index) % half


def combined_edge_entry_count(k: int) -> int:
    """Size of the combined edge-group table: ``k/2 + (k/2)²``.

    The paper: "This combined routing table from k/2 edge switches has
    k/2 in-bound entries and k²/4 out-bound entries ... 1056 entries for
    a k = 64 fat-tree".
    """
    half = k // 2
    return half + half * half


@dataclass
class ImpersonationTables:
    """Builds and audits the preloaded group tables for one fat-tree."""

    tree: FatTree

    def __post_init__(self) -> None:
        self.routing = TwoLevelRouting(self.tree)

    # ------------------------------------------------------------------
    # the three combined tables
    # ------------------------------------------------------------------

    def combined_edge_table(self, pod: int) -> RoutingTable:
        """Union of the pod's (VLAN-tagged) edge tables.

        The in-bound host entries are identical across edges and
        deduplicate in the merge; the VLAN-tagged out-bound entries stay
        distinct per edge.
        """
        combined = RoutingTable(owner=f"FG.edge.{pod}")
        for e in range(self.tree.half):
            combined.merge(self.routing.edge_table(pod, e, tagged=True))
        return combined

    def agg_group_table(self, pod: int) -> RoutingTable:
        """Aggregation switches of a pod already share one table."""
        return self.routing.agg_table(pod)

    def core_group_table(self) -> RoutingTable:
        """All core switches share one table."""
        return self.routing.core_table()

    # ------------------------------------------------------------------
    # TCAM accounting (§4.3)
    # ------------------------------------------------------------------

    def tcam_report(self, capacity: int = DEFAULT_TCAM_CAPACITY) -> dict[str, object]:
        """Entry counts per group table and whether they fit ``capacity``."""
        edge = self.combined_edge_table(0).size
        agg = self.agg_group_table(0).size
        core = self.core_group_table().size
        return {
            "k": self.tree.k,
            "edge_group_entries": edge,
            "edge_group_formula": combined_edge_entry_count(self.tree.k),
            "agg_group_entries": agg,
            "core_group_entries": core,
            "tcam_capacity": capacity,
            "fits": max(edge, agg, core) <= capacity,
        }
