"""The logically centralized ShareBackup controller (paper Section 4).

Responsibilities, mirroring the paper:

* **Failure detection** (§4.1): switches send keep-alive messages
  continuously; a switch that misses ``miss_threshold`` consecutive
  probe intervals is declared dead.  Link failures are detected by the
  endpoints (F10-style rapid probing) and *reported* to the controller.
* **Node-failure recovery** (§4.1): allocate a free backup switch from
  the failed switch's failure group and reconfigure that group's circuit
  switches so the backup inherits the failed switch's connectivity.
* **Link-failure recovery** (§4.1): "for the purpose of fast recovery,
  the switches on both sides of the failed link are replaced", each from
  its own failure group; host-attached links replace only the switch
  side ("we assume switches are at fault for link failures to hosts").
* **Offline diagnosis** (§4.2): afterwards, the suspect interfaces are
  tested through the circuit-switch rings; exonerated switches return to
  their group's spare pool (the paper's no-switch-back policy — the
  backup keeps serving, the old switch becomes the new spare).
* **Circuit-switch failure policy** (§5.1): a burst of link-failure
  reports that all map to one circuit switch trips a threshold; the
  controller halts automatic recovery and requests human intervention;
  a rebooted circuit switch gets its intended configuration re-pushed.
* **Controller replication** (§5.1): a small cluster with primary
  election is modelled by :class:`ControllerCluster`.

Every recovery returns a :class:`RecoveryReport` carrying the latency
breakdown from :mod:`repro.core.recovery`, so control-plane behaviour
and the paper's timing claims are tested against the same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .diagnosis import FailureDiagnosis, LinkDiagnosis
from .failure_group import NoBackupAvailable
from .recovery import RecoveryBreakdown, RecoveryTimeModel
from .sharebackup import ShareBackupNetwork

__all__ = [
    "RecoveryReport",
    "HumanInterventionRequired",
    "ShareBackupController",
    "ControllerCluster",
]


class HumanInterventionRequired(Exception):
    """Automatic recovery halted (suspected circuit-switch failure)."""


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one recovery operation."""

    kind: str  # "node" | "link"
    replaced: tuple[tuple[str, str], ...]  # (logical slot, new physical switch)
    circuit_switches_touched: int
    breakdown: RecoveryBreakdown
    unrecoverable: tuple[str, ...] = ()  # slots with no spare left

    @property
    def recovery_time(self) -> float:
        return self.breakdown.total

    @property
    def fully_recovered(self) -> bool:
        return not self.unrecoverable


@dataclass
class _PendingDiagnosis:
    end_a: tuple[str, tuple]
    end_b: Optional[tuple[str, tuple]]
    #: physical switches taken offline for this failure, per logical slot
    offline: dict[str, str]


class ShareBackupController:
    """Control-plane state machine over one :class:`ShareBackupNetwork`."""

    def __init__(
        self,
        net: ShareBackupNetwork,
        timing: RecoveryTimeModel | None = None,
        technology: str = "crosspoint",
        miss_threshold: int = 3,
        cs_report_threshold: int = 4,
        cs_report_window: float = 1.0,
    ) -> None:
        self.net = net
        self.timing = timing or RecoveryTimeModel()
        self.technology = technology
        self.miss_threshold = miss_threshold
        self.cs_report_threshold = cs_report_threshold
        self.cs_report_window = cs_report_window

        self.halted = False
        self.diagnosis = FailureDiagnosis(net)
        self.pending_diagnoses: list[_PendingDiagnosis] = []
        self.log: list[str] = []
        self._last_heartbeat: dict[str, float] = {
            switch: 0.0 for switch in net.physical_health
        }
        self._cs_reports: dict[str, list[float]] = {}
        #: Intended circuit configuration, for re-pushing after CS reboot.
        self._intended_config: dict[str, dict] = {}

    # ==================================================================
    # keep-alive failure detection (§4.1)
    # ==================================================================

    def heartbeat(self, physical_switch: str, now: float) -> None:
        """A keep-alive arrived from ``physical_switch``."""
        if physical_switch not in self._last_heartbeat:
            raise KeyError(f"unknown switch {physical_switch!r}")
        self._last_heartbeat[physical_switch] = now

    def detect_silent_switches(self, now: float) -> list[str]:
        """Physical switches silent beyond ``miss_threshold`` intervals.

        Only in-service switches are watched: a free spare going silent
        matters for maintenance, not for recovery, and offline switches
        are expected to be silent.
        """
        deadline = self.miss_threshold * self.timing.probe_interval
        silent = []
        for group in self.net.groups.values():
            for slot in group.logical_slots:
                physical = group.physical_of(slot)
                if now - self._last_heartbeat.get(physical, 0.0) > deadline:
                    silent.append(physical)
        return sorted(set(silent))

    # ==================================================================
    # node-failure recovery (§4.1)
    # ==================================================================

    def handle_node_failure(
        self, logical_switch: str, now: float = 0.0
    ) -> RecoveryReport:
        """Replace a dead switch with a backup from its failure group."""
        self._check_not_halted()
        group = self.net.group_of(logical_switch)
        failed_physical = group.physical_of(logical_switch)
        self.net.physical_health[failed_physical] = False

        try:
            spare = group.allocate_spare()
        except NoBackupAvailable:
            self.log.append(
                f"[{now:.6f}] node failure {logical_switch} "
                f"({failed_physical}): NO SPARE in {group.group_id}"
            )
            return RecoveryReport(
                kind="node",
                replaced=(),
                circuit_switches_touched=0,
                breakdown=self.timing.sharebackup(self.technology),
                unrecoverable=(logical_switch,),
            )

        touched, _latency = self.net.failover(logical_switch, spare)
        self.log.append(
            f"[{now:.6f}] node failure {logical_switch}: {failed_physical} -> "
            f"{spare} ({touched} circuit switches reconfigured)"
        )
        return RecoveryReport(
            kind="node",
            replaced=((logical_switch, spare),),
            circuit_switches_touched=touched,
            breakdown=self.timing.sharebackup(self.technology),
        )

    # ==================================================================
    # link-failure recovery (§4.1) + deferred diagnosis (§4.2)
    # ==================================================================

    def handle_link_failure(
        self,
        end_a: tuple[str, tuple],
        end_b: tuple[str, tuple],
        now: float = 0.0,
        true_faulty_interfaces: tuple[tuple[str, tuple], ...] = (),
    ) -> RecoveryReport:
        """Both endpoints reported a dead link; replace both switch sides.

        ``end_a``/``end_b`` name the *logical* devices and interfaces of
        the failed link; host ends are recognised by name and never
        replaced.  ``true_faulty_interfaces`` is the injected ground
        truth, expressed against the *physical* switches, consumed later
        by diagnosis.
        """
        self._check_not_halted()
        self._register_cs_report(end_a, now)

        for faulty in true_faulty_interfaces:
            self.net.interface_faults.add(faulty)

        replaced: list[tuple[str, str]] = []
        unrecoverable: list[str] = []
        offline: dict[str, str] = {}
        touched_total = 0
        physical_ends: list[Optional[tuple[str, tuple]]] = []

        for device, iface in (end_a, end_b):
            if device.startswith("H."):
                physical_ends.append(None)  # hosts are never suspects
                continue
            group = self.net.group_of(device)
            old_physical = group.physical_of(device)
            physical_ends.append((old_physical, iface))
            try:
                spare = group.allocate_spare()
            except NoBackupAvailable:
                unrecoverable.append(device)
                continue
            touched, _lat = self.net.failover(device, spare)
            touched_total += touched
            replaced.append((device, spare))
            offline[device] = old_physical

        suspects = [end for end in physical_ends if end is not None]
        if suspects:
            self.pending_diagnoses.append(
                _PendingDiagnosis(
                    end_a=suspects[0],
                    end_b=suspects[1] if len(suspects) > 1 else None,
                    offline=offline,
                )
            )

        self.log.append(
            f"[{now:.6f}] link failure {end_a[0]}--{end_b[0]}: replaced "
            f"{[r[0] for r in replaced]} ({touched_total} circuit switches)"
        )
        return RecoveryReport(
            kind="link",
            replaced=tuple(replaced),
            circuit_switches_touched=touched_total,
            breakdown=self.timing.sharebackup(self.technology),
            unrecoverable=tuple(unrecoverable),
        )

    def run_pending_diagnoses(self) -> list[LinkDiagnosis]:
        """Run every deferred offline diagnosis (the §4.2 background task).

        Exonerated switches rejoin their group's spare pool; condemned
        switches stay offline awaiting :meth:`repair`.  When *no* suspect
        interface is condemned (a pure cable fault), the paper's
        assumption "switches are at fault" has been falsified for both
        sides — both switches return to the pools and the cable is left
        for manual replacement.
        """
        idle = self._idle_devices()
        results = []
        for pending in self.pending_diagnoses:
            result = self.diagnosis.diagnose_link(pending.end_a, pending.end_b, idle)
            results.append(result)
            for verdict in (result.end_a, result.end_b):
                if verdict is None or not verdict.healthy:
                    continue
                self._reinstate_physical(verdict.device)
            self.log.append(
                f"diagnosis: exonerated {result.exonerated_devices()}, "
                f"condemned {result.condemned_devices()}"
            )
        self.pending_diagnoses = []
        return results

    def repair(self, physical_switch: str) -> None:
        """A condemned switch came back from repair: rejoin as a spare.

        Per the paper there is no switch-back: the repaired switch
        becomes a backup for future failures.
        """
        self.net.physical_health[physical_switch] = True
        self._reinstate_physical(physical_switch)
        self.log.append(f"repair: {physical_switch} reinstated as spare")

    def _reinstate_physical(self, physical: str) -> None:
        for group in self.net.groups.values():
            if physical in group.offline:
                self.net.physical_health[physical] = True
                group.reinstate(physical)
                # Clear any fault annotations: repair/exoneration makes the
                # interfaces trustworthy again.
                self.net.interface_faults = {
                    (dev, iface)
                    for dev, iface in self.net.interface_faults
                    if dev != physical
                }
                return

    def _idle_devices(self) -> set[str]:
        """Offline suspects + every free spare: legal diagnosis partners."""
        idle: set[str] = set()
        for group in self.net.groups.values():
            idle.update(group.offline)
            idle.update(group.spares)
        return idle

    # ==================================================================
    # circuit-switch failure policy (§5.1)
    # ==================================================================

    def _register_cs_report(self, end: tuple[str, tuple], now: float) -> None:
        device, iface = end
        # Reports arrive about logical elements; the cable map is keyed by
        # the physical switch currently serving the slot.
        if not device.startswith("H."):
            device = self.net.group_of(device).physical_of(device)
        cable = self.net._device_cable.get((device, iface))
        if cable is None:
            return
        reports = self._cs_reports.setdefault(cable.cs, [])
        reports.append(now)
        fresh = [t for t in reports if now - t <= self.cs_report_window]
        self._cs_reports[cable.cs] = fresh
        if len(fresh) >= self.cs_report_threshold:
            self.halted = True
            self.log.append(
                f"[{now:.6f}] {len(fresh)} link reports via {cable.cs} within "
                f"{self.cs_report_window}s — suspected circuit switch failure, "
                "halting automatic recovery"
            )

    def circuit_switch_rebooted(self, cs_name: str, now: float = 0.0) -> None:
        """Re-push the intended circuit configuration and resume recovery.

        "A rebooted circuit switch can get up-to-date circuit
        configurations from the controller" — the controller snapshots
        intended configs on demand, so a wiped switch is restored here.
        """
        cs = self.net.circuit_switches[cs_name]
        cs.up = True
        intended = self._intended_config.get(cs_name)
        if intended is not None:
            current = cs.mapping()
            for port in current:
                cs.disconnect(port)
            seen = set()
            for a, b in intended.items():
                if a in seen or b in seen:
                    continue
                cs.connect(a, b)
                seen.update((a, b))
        self.halted = False
        self._cs_reports.pop(cs_name, None)
        self.log.append(f"[{now:.6f}] circuit switch {cs_name} rebooted; resumed")

    def snapshot_intended_configs(self) -> None:
        """Record every circuit switch's current mapping as the intent."""
        for name, cs in self.net.circuit_switches.items():
            self._intended_config[name] = cs.mapping()

    def _check_not_halted(self) -> None:
        if self.halted:
            raise HumanInterventionRequired(
                "recovery halted pending circuit-switch inspection"
            )

    # ==================================================================
    # capacity accounting (§5.1)
    # ==================================================================

    def capacity_summary(self) -> dict[str, float]:
        """Section 5.1's headline numbers for this network."""
        k, n = self.net.k, self.net.n
        return {
            "k": k,
            "n": n,
            "failure_groups": len(self.net.groups),
            "backup_ratio": n / (k / 2),
            "switch_failures_per_group": n,
            "link_failures_per_group_max": k * n,
            "circuit_ports_per_side": self.net.circuit_ports_per_side,
        }


class ControllerCluster:
    """The controller replica set with primary election (§5.1).

    "A primary controller is elected to react to failures.  When the
    primary controller fails, another controller will be elected to take
    its place."  Election here is deterministic lowest-id-alive, which is
    what a lease-based election converges to with ordered candidates.
    """

    def __init__(
        self, replica_ids: tuple[str, ...] = ("ctrl-0", "ctrl-1", "ctrl-2")
    ) -> None:
        if not replica_ids:
            raise ValueError("need at least one controller replica")
        self.replicas: dict[str, bool] = {r: True for r in replica_ids}
        self.elections = 0
        self._primary: Optional[str] = None
        self._elect()

    def _elect(self) -> None:
        alive = sorted(r for r, up in self.replicas.items() if up)
        new_primary = alive[0] if alive else None
        if new_primary != self._primary:
            self.elections += 1
            self._primary = new_primary

    @property
    def primary(self) -> Optional[str]:
        return self._primary

    @property
    def available(self) -> bool:
        return self._primary is not None

    def fail_replica(self, replica_id: str) -> None:
        self.replicas[replica_id] = False
        self._elect()

    def restore_replica(self, replica_id: str) -> None:
        self.replicas[replica_id] = True
        self._elect()
