"""The logically centralized ShareBackup controller (paper Section 4).

Responsibilities, mirroring the paper:

* **Failure detection** (§4.1): switches send keep-alive messages
  continuously; a switch that misses ``miss_threshold`` consecutive
  probe intervals is declared dead.  Link failures are detected by the
  endpoints (F10-style rapid probing) and *reported* to the controller.
* **Node-failure recovery** (§4.1): allocate a free backup switch from
  the failed switch's failure group and reconfigure that group's circuit
  switches so the backup inherits the failed switch's connectivity.
* **Link-failure recovery** (§4.1): "for the purpose of fast recovery,
  the switches on both sides of the failed link are replaced", each from
  its own failure group; host-attached links replace only the switch
  side ("we assume switches are at fault for link failures to hosts").
* **Offline diagnosis** (§4.2): afterwards, the suspect interfaces are
  tested through the circuit-switch rings; exonerated switches return to
  their group's spare pool (the paper's no-switch-back policy — the
  backup keeps serving, the old switch becomes the new spare).
* **Circuit-switch failure policy** (§5.1): a burst of link-failure
  reports that all map to one circuit switch trips a threshold; the
  controller halts automatic recovery and requests human intervention;
  a rebooted circuit switch gets its intended configuration re-pushed.
* **Controller replication** (§5.1): a small cluster with primary
  election is modelled by :class:`ControllerCluster`; a newly elected
  primary re-snapshots the intended circuit configurations so it never
  inherits a stale intent from the crashed primary.
* **Graceful degradation** (chaos hardening, F10-style cascaded
  fallbacks): circuit-switch operations are retried per
  :class:`~repro.retry.RetryPolicy`; a spare whose wiring keeps failing
  is skipped for the next idle spare; and when no backup is workable the
  slot is handed to global optimal rerouting instead of stranding
  traffic (``degrade_to_reroute=True``).  Every walk down that ladder
  is recorded as an auditable
  :class:`~repro.core.degradation.DegradationReport`.

Every recovery returns a :class:`RecoveryReport` carrying the latency
breakdown from :mod:`repro.core.recovery`, so control-plane behaviour
and the paper's timing claims are tested against the same code path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from ..retry import RetryPolicy
from ..rng import ensure_rng

if TYPE_CHECKING:
    import random

    import numpy as np
from .circuit_switch import CircuitSwitchError
from .degradation import DegradationReport, DegradationStep
from .diagnosis import FailureDiagnosis, LinkDiagnosis
from .failure_group import NoBackupAvailable
from .recovery import RecoveryBreakdown, RecoveryTimeModel
from .sharebackup import ShareBackupNetwork

__all__ = [
    "RecoveryReport",
    "HumanInterventionRequired",
    "EpochFencedError",
    "ShareBackupController",
    "ControllerCluster",
    "DEFAULT_CONTROLLER_RETRY",
]

#: Circuit-switch operations are control messages plus a crosspoint write;
#: retries back off in sub-millisecond steps of *simulated* time (the
#: delay is charged to the recovery latency, never slept).
DEFAULT_CONTROLLER_RETRY = RetryPolicy(
    max_retries=2, backoff_base=2e-4, backoff_factor=2.0
)

#: Slack for the silence-threshold comparison.  A probe that arrived at
#: boundary *b* must not count as "missed" at boundary *b + threshold*
#: just because ``(b + threshold) - b`` lands a few ulps above the
#: threshold in floats; without this the detection boundary depends on
#: the binary representation of the probe times instead of the schedule.
_DETECTION_EPS = 1e-9


class HumanInterventionRequired(Exception):
    """Automatic recovery halted (suspected circuit-switch failure)."""


class EpochFencedError(Exception):
    """A commit attempted under a stale (or vacant) fencing epoch.

    Raised by :meth:`ControllerCluster.check_fence` when a writer holds
    an epoch older than the cluster's current one — i.e. a deposed
    primary trying to land a late write after a new election — or when
    no primary is available at all.
    """

    def __init__(self, holder_epoch: int, current_epoch: int, context: str = ""):
        self.holder_epoch = holder_epoch
        self.current_epoch = current_epoch
        self.context = context
        detail = f" ({context})" if context else ""
        super().__init__(
            f"commit fenced: holder epoch {holder_epoch} vs "
            f"cluster epoch {current_epoch}{detail}"
        )


@dataclass(frozen=True)
class RecoveryReport:
    """Outcome of one recovery operation."""

    kind: str  # "node" | "link"
    replaced: tuple[tuple[str, str], ...]  # (logical slot, new physical switch)
    circuit_switches_touched: int
    breakdown: RecoveryBreakdown
    unrecoverable: tuple[str, ...] = ()  # slots with no spare left
    #: The subset of ``unrecoverable`` slots handed to global optimal
    #: rerouting (``degrade_to_reroute``): traffic keeps flowing on the
    #: surviving fat-tree paths, at rerouting's convergence cost.
    degraded: tuple[str, ...] = ()

    @property
    def recovery_time(self) -> float:
        return self.breakdown.total

    @property
    def fully_recovered(self) -> bool:
        return not self.unrecoverable


@dataclass
class _PendingDiagnosis:
    end_a: tuple[str, tuple]
    end_b: Optional[tuple[str, tuple]]
    #: physical switches taken offline for this failure, per logical slot
    offline: dict[str, str]


class ShareBackupController:
    """Control-plane state machine over one :class:`ShareBackupNetwork`."""

    def __init__(
        self,
        net: ShareBackupNetwork,
        timing: RecoveryTimeModel | None = None,
        technology: str = "crosspoint",
        miss_threshold: int = 3,
        cs_report_threshold: int = 4,
        cs_report_window: float = 1.0,
        retry_policy: RetryPolicy | None = None,
        degrade_to_reroute: bool = False,
        rng: "int | random.Random | np.random.Generator | None" = 0,
    ) -> None:
        self.net = net
        self.timing = timing or RecoveryTimeModel()
        self.technology = technology
        self.miss_threshold = miss_threshold
        self.cs_report_threshold = cs_report_threshold
        self.cs_report_window = cs_report_window
        self.retry_policy = retry_policy or DEFAULT_CONTROLLER_RETRY
        #: When True, a slot with no workable backup degrades to global
        #: optimal rerouting instead of stranding traffic, and a halted
        #: controller skips backup assignment rather than raising
        #: :class:`HumanInterventionRequired` (which becomes last resort,
        #: reachable only by disabling degradation).  Default False: the
        #: paper's §4 behaviour, pinned by the legacy tests.
        self.degrade_to_reroute = degrade_to_reroute
        self._rng = ensure_rng(rng)
        #: Audit trail: one report per recovery that left the fast path.
        self.degradations: list[DegradationReport] = []

        self.halted = False
        self.diagnosis = FailureDiagnosis(net)
        self.pending_diagnoses: list[_PendingDiagnosis] = []
        self.log: list[str] = []
        self._last_heartbeat: dict[str, float] = {
            switch: 0.0 for switch in net.physical_health
        }
        self._cs_reports: dict[str, list[float]] = {}
        #: Intended circuit configuration, for re-pushing after CS reboot.
        self._intended_config: dict[str, dict] = {}

    # ==================================================================
    # keep-alive failure detection (§4.1)
    # ==================================================================

    def heartbeat(self, physical_switch: str, now: float) -> None:
        """A keep-alive arrived from ``physical_switch``."""
        if physical_switch not in self._last_heartbeat:
            raise KeyError(f"unknown switch {physical_switch!r}")
        self._last_heartbeat[physical_switch] = now

    def detect_silent_switches(self, now: float) -> list[str]:
        """Physical switches silent beyond ``miss_threshold`` intervals.

        Only in-service switches are watched: a free spare going silent
        matters for maintenance, not for recovery, and offline switches
        are expected to be silent.
        """
        deadline = (
            self.miss_threshold * self.timing.probe_interval + _DETECTION_EPS
        )
        silent: list[str] = []
        for group in self.net.groups.values():
            for slot in group.logical_slots:
                physical = group.physical_of(slot)
                if now - self._last_heartbeat.get(physical, 0.0) > deadline:
                    silent.append(physical)
        return sorted(set(silent))

    def detection_deadline(self, death_time: float) -> float:
        """First probe boundary at which a ``death_time`` silence is
        detectable.

        Boundaries are integer multiples of the probe interval; the
        switch is declared dead at the first boundary where
        ``now - last_heartbeat`` exceeds ``miss_threshold × interval``.
        Both the call-driven watchdog and the service's boundary scan
        derive their schedules from this one method, which is what the
        chaos-replay A/B regression relies on.
        """
        interval = self.timing.probe_interval
        threshold = self.miss_threshold * interval
        return math.ceil((death_time + threshold) / interval - 1e-12) * interval

    # ==================================================================
    # node-failure recovery (§4.1)
    # ==================================================================

    def handle_node_failure(
        self, logical_switch: str, now: float = 0.0
    ) -> RecoveryReport:
        """Replace a dead switch with a backup from its failure group.

        Walks the degradation ladder (:mod:`repro.core.degradation`):
        assign a spare with retried circuit reconfiguration, try the next
        idle spare when one's wiring keeps failing, and — with
        ``degrade_to_reroute`` — hand the slot to global rerouting rather
        than stranding traffic.
        """
        halted = self._halt_blocks_backup()
        group = self.net.group_of(logical_switch)
        failed_physical = group.physical_of(logical_switch)
        self.net.physical_health[failed_physical] = False

        steps: list[DegradationStep] = []
        if halted:
            steps.append(self._halted_step(group.group_id))
            spare, touched, retry_delay = None, 0, 0.0
        else:
            spare, touched, retry_delay = self._assign_backup(logical_switch, steps)
        breakdown = self._breakdown(retry_delay)

        if spare is not None:
            self.log.append(
                f"[{now:.6f}] node failure {logical_switch}: {failed_physical} -> "
                f"{spare} ({touched} circuit switches reconfigured)"
            )
            self._record_degradation("node", logical_switch, now, steps, "recovered")
            return RecoveryReport(
                kind="node",
                replaced=((logical_switch, spare),),
                circuit_switches_touched=touched,
                breakdown=breakdown,
            )

        degraded: tuple[str, ...] = ()
        if self.degrade_to_reroute:
            degraded = (logical_switch,)
            steps.append(self._reroute_step(logical_switch))
            outcome = "rerouted"
            self.log.append(
                f"[{now:.6f}] node failure {logical_switch} ({failed_physical}): "
                "no workable backup — degraded to global rerouting"
            )
        else:
            outcome = "stranded"
            self.log.append(
                f"[{now:.6f}] node failure {logical_switch} "
                f"({failed_physical}): NO SPARE in {group.group_id}"
            )
        self._record_degradation("node", logical_switch, now, steps, outcome)
        return RecoveryReport(
            kind="node",
            replaced=(),
            circuit_switches_touched=0,
            breakdown=breakdown,
            unrecoverable=(logical_switch,),
            degraded=degraded,
        )

    # ==================================================================
    # link-failure recovery (§4.1) + deferred diagnosis (§4.2)
    # ==================================================================

    def handle_link_failure(
        self,
        end_a: tuple[str, tuple],
        end_b: tuple[str, tuple],
        now: float = 0.0,
        true_faulty_interfaces: tuple[tuple[str, tuple], ...] = (),
    ) -> RecoveryReport:
        """Both endpoints reported a dead link; replace both switch sides.

        ``end_a``/``end_b`` name the *logical* devices and interfaces of
        the failed link; host ends are recognised by name and never
        replaced.  ``true_faulty_interfaces`` is the injected ground
        truth, expressed against the *physical* switches, consumed later
        by diagnosis.
        """
        halted = self._halt_blocks_backup()
        self._register_cs_report(end_a, now)

        for faulty in true_faulty_interfaces:
            self.net.interface_faults.add(faulty)

        replaced: list[tuple[str, str]] = []
        unrecoverable: list[str] = []
        degraded: list[str] = []
        offline: dict[str, str] = {}
        touched_total = 0
        retry_delay_total = 0.0
        physical_ends: list[Optional[tuple[str, tuple]]] = []

        for device, iface in (end_a, end_b):
            if device.startswith("H."):
                physical_ends.append(None)  # hosts are never suspects
                continue
            group = self.net.group_of(device)
            old_physical = group.physical_of(device)
            physical_ends.append((old_physical, iface))
            steps: list[DegradationStep] = []
            if halted:
                steps.append(self._halted_step(group.group_id))
                spare, touched, retry_delay = None, 0, 0.0
            else:
                spare, touched, retry_delay = self._assign_backup(device, steps)
            retry_delay_total += retry_delay
            if spare is not None:
                touched_total += touched
                replaced.append((device, spare))
                offline[device] = old_physical
                self._record_degradation("link", device, now, steps, "recovered")
                continue
            unrecoverable.append(device)
            if self.degrade_to_reroute:
                degraded.append(device)
                steps.append(self._reroute_step(device))
                self._record_degradation("link", device, now, steps, "rerouted")
            else:
                self._record_degradation("link", device, now, steps, "stranded")

        suspects = [end for end in physical_ends if end is not None]
        if suspects:
            self.pending_diagnoses.append(
                _PendingDiagnosis(
                    end_a=suspects[0],
                    end_b=suspects[1] if len(suspects) > 1 else None,
                    offline=offline,
                )
            )

        self.log.append(
            f"[{now:.6f}] link failure {end_a[0]}--{end_b[0]}: replaced "
            f"{[r[0] for r in replaced]} ({touched_total} circuit switches)"
        )
        return RecoveryReport(
            kind="link",
            replaced=tuple(replaced),
            circuit_switches_touched=touched_total,
            breakdown=self._breakdown(retry_delay_total),
            unrecoverable=tuple(unrecoverable),
            degraded=tuple(degraded),
        )

    def run_pending_diagnoses(self) -> list[LinkDiagnosis]:
        """Run every deferred offline diagnosis (the §4.2 background task).

        Exonerated switches rejoin their group's spare pool; condemned
        switches stay offline awaiting :meth:`repair`.  When *no* suspect
        interface is condemned (a pure cable fault), the paper's
        assumption "switches are at fault" has been falsified for both
        sides — both switches return to the pools and the cable is left
        for manual replacement.
        """
        idle = self._idle_devices()
        results = []
        for pending in self.pending_diagnoses:
            result = self.diagnosis.diagnose_link(pending.end_a, pending.end_b, idle)
            results.append(result)
            for verdict in (result.end_a, result.end_b):
                if verdict is None or not verdict.healthy:
                    continue
                self._reinstate_physical(verdict.device)
            self.log.append(
                f"diagnosis: exonerated {result.exonerated_devices()}, "
                f"condemned {result.condemned_devices()}"
            )
        self.pending_diagnoses = []
        return results

    def repair(self, physical_switch: str) -> None:
        """A condemned switch came back from repair: rejoin as a spare.

        Per the paper there is no switch-back: the repaired switch
        becomes a backup for future failures.
        """
        self.net.physical_health[physical_switch] = True
        self._reinstate_physical(physical_switch)
        self.log.append(f"repair: {physical_switch} reinstated as spare")

    def _reinstate_physical(self, physical: str) -> None:
        for group in self.net.groups.values():
            if physical in group.offline:
                self.net.physical_health[physical] = True
                group.reinstate(physical)
                # Clear any fault annotations: repair/exoneration makes the
                # interfaces trustworthy again.
                self.net.interface_faults = {
                    (dev, iface)
                    for dev, iface in self.net.interface_faults
                    if dev != physical
                }
                return

    def _idle_devices(self) -> set[str]:
        """Offline suspects + every free spare: legal diagnosis partners."""
        idle: set[str] = set()
        for group in self.net.groups.values():
            idle.update(group.offline)
            idle.update(group.spares)
        return idle

    # ==================================================================
    # circuit-switch failure policy (§5.1)
    # ==================================================================

    def _register_cs_report(self, end: tuple[str, tuple], now: float) -> None:
        device, iface = end
        # Reports arrive about logical elements; the cable map is keyed by
        # the physical switch currently serving the slot.
        if not device.startswith("H."):
            device = self.net.group_of(device).physical_of(device)
        cable = self.net._device_cable.get((device, iface))
        if cable is None:
            return
        reports = self._cs_reports.setdefault(cable.cs, [])
        reports.append(now)
        fresh = [t for t in reports if now - t <= self.cs_report_window]
        self._cs_reports[cable.cs] = fresh
        if len(fresh) >= self.cs_report_threshold:
            self.halted = True
            self.log.append(
                f"[{now:.6f}] {len(fresh)} link reports via {cable.cs} within "
                f"{self.cs_report_window}s — suspected circuit switch failure, "
                "halting automatic recovery"
            )

    def circuit_switch_rebooted(self, cs_name: str, now: float = 0.0) -> None:
        """Re-push the intended circuit configuration and resume recovery.

        "A rebooted circuit switch can get up-to-date circuit
        configurations from the controller" — the controller snapshots
        intended configs on demand, so a wiped switch is restored here.
        """
        cs = self.net.circuit_switches[cs_name]
        cs.up = True
        intended = self._intended_config.get(cs_name)
        if intended is not None:
            current = cs.mapping()
            for port in current:
                cs.disconnect(port)
            seen = set()
            for a, b in intended.items():
                if a in seen or b in seen:
                    continue
                cs.connect(a, b)
                seen.update((a, b))
        self.halted = False
        self._cs_reports.pop(cs_name, None)
        self.log.append(f"[{now:.6f}] circuit switch {cs_name} rebooted; resumed")

    def snapshot_intended_configs(self) -> None:
        """Record every circuit switch's current mapping as the intent."""
        for name, cs in self.net.circuit_switches.items():
            self._intended_config[name] = cs.mapping()

    def _halt_blocks_backup(self) -> bool:
        """Whether the circuit-switch halt blocks backup assignment now.

        Legacy contract (default): a halted controller raises — automatic
        recovery stops dead until an operator intervenes.  With graceful
        degradation the halt only disables the *backup* rungs of the
        ladder (the circuit switches are suspect, so reconfiguring them
        would be reckless); the reroute rung still runs, making
        :class:`HumanInterventionRequired` a true last resort.
        """
        if self.halted and not self.degrade_to_reroute:
            raise HumanInterventionRequired(
                "recovery halted pending circuit-switch inspection"
            )
        return self.halted

    # ==================================================================
    # the degradation ladder (chaos hardening)
    # ==================================================================

    def _assign_backup(
        self, logical: str, steps: list[DegradationStep]
    ) -> tuple[Optional[str], int, float]:
        """Rungs 1–2: allocate and wire a spare, retrying and falling back
        to alternate spares on circuit-switch failures.

        Returns ``(spare, circuit_switches_touched, retry_delay)`` with
        ``spare=None`` when every idle spare was tried (or none was left);
        ``retry_delay`` is the simulated backoff time accumulated across
        retries, to be charged to the recovery breakdown.  Appends one
        :class:`DegradationStep` per candidate tried.
        """
        group = self.net.group_of(logical)
        rejected: list[str] = []
        spare: Optional[str] = None
        touched = 0
        delay = 0.0
        while spare is None:
            try:
                candidate = group.allocate_spare()
            except NoBackupAvailable as exc:
                steps.append(
                    DegradationStep(
                        action="allocate-backup",
                        target=group.group_id,
                        attempts=1,
                        outcome="exhausted",
                        detail=str(exc),
                    )
                )
                break
            attempts = 0
            last_error: Optional[CircuitSwitchError] = None
            for attempt in range(self.retry_policy.total_attempts):
                attempts = attempt + 1
                try:
                    touched, _latency = self.net.failover(logical, candidate)
                    last_error = None
                    break
                except CircuitSwitchError as exc:
                    last_error = exc
                    if attempt < self.retry_policy.max_retries:
                        delay += self.retry_policy.delay(attempt, rng=self._rng)
            if last_error is None:
                steps.append(
                    DegradationStep("assign-backup", candidate, attempts, "ok")
                )
                spare = candidate
                # Keep the reboot-re-push intent fresh: this group's
                # circuits just changed, and a circuit switch rebooting
                # later must get the post-failover wiring, not a ghost.
                for cs in self.net.circuit_switches_of(group.group_id):
                    self._intended_config[cs.name] = cs.mapping()
            else:
                steps.append(
                    DegradationStep(
                        "assign-backup",
                        candidate,
                        attempts,
                        "failed",
                        detail=str(last_error),
                    )
                )
                rejected.append(candidate)
        # Failed wiring blames the circuit switches, not the spare: the
        # hardware is still idle and healthy, so it returns to the pool
        # (at the tail — freshly suspect spares are tried last).
        group.spares.extend(rejected)
        return spare, touched, delay

    def _breakdown(self, retry_delay: float) -> RecoveryBreakdown:
        base = self.timing.sharebackup(self.technology)
        if retry_delay:
            base = replace(
                base, reconfiguration=base.reconfiguration + retry_delay
            )
        return base

    def _halted_step(self, group_id: str) -> DegradationStep:
        return DegradationStep(
            action="assign-backup",
            target=group_id,
            attempts=0,
            outcome="skipped",
            detail="recovery halted (suspected circuit-switch failure)",
        )

    def _reroute_step(self, logical: str) -> DegradationStep:
        return DegradationStep(
            action="reroute",
            target=logical,
            attempts=1,
            outcome="ok",
            detail="global optimal rerouting takes over the slot",
        )

    def _record_degradation(
        self,
        kind: str,
        logical: str,
        now: float,
        steps: list[DegradationStep],
        outcome: str,
    ) -> None:
        report = DegradationReport(
            kind=kind,
            logical=logical,
            time=now,
            steps=tuple(steps),
            outcome=outcome,
        )
        if report.degraded:
            self.degradations.append(report)

    # ==================================================================
    # capacity accounting (§5.1)
    # ==================================================================

    def capacity_summary(self) -> dict[str, float]:
        """Section 5.1's headline numbers for this network."""
        k, n = self.net.k, self.net.n
        return {
            "k": k,
            "n": n,
            "failure_groups": len(self.net.groups),
            "backup_ratio": n / (k / 2),
            "switch_failures_per_group": n,
            "link_failures_per_group_max": k * n,
            "circuit_ports_per_side": self.net.circuit_ports_per_side,
        }


class ControllerCluster:
    """The controller replica set with primary election (§5.1).

    "A primary controller is elected to react to failures.  When the
    primary controller fails, another controller will be elected to take
    its place."  Election here is deterministic lowest-id-alive, which is
    what a lease-based election converges to with ordered candidates.
    """

    def __init__(
        self,
        replica_ids: tuple[str, ...] = ("ctrl-0", "ctrl-1", "ctrl-2"),
        controller: Optional[ShareBackupController] = None,
    ) -> None:
        if not replica_ids:
            raise ValueError("need at least one controller replica")
        self.replicas: dict[str, bool] = {r: True for r in replica_ids}
        self.elections = 0
        #: Monotonic fencing epoch: bumped on every primary change, never
        #: reused.  A writer stamps the epoch it observed into each commit;
        #: :meth:`check_fence` rejects any stamp that is no longer current.
        self.epoch = 0
        #: Audit trail of rejected late writes (deposed-primary commits).
        self.fencing_rejections: list[dict] = []
        self._primary: Optional[str] = None
        self._listeners: list = []
        # Attach before the initial election so the first primary starts
        # from a fresh intent snapshot like every later one.
        self._controller = controller
        self._elect()

    def _elect(self) -> None:
        alive = sorted(r for r, up in self.replicas.items() if up)
        new_primary = alive[0] if alive else None
        if new_primary != self._primary:
            self.elections += 1
            self.epoch += 1
            self._primary = new_primary
            if new_primary is not None and self._controller is not None:
                # A replica elected mid-recovery must not trust the intent
                # snapshot replicated from the crashed primary: the old
                # primary may have reconfigured circuits after its last
                # replication.  Re-derive intent from the live network so
                # a later circuit-switch reboot restores *current* wiring,
                # not a pre-failover ghost.
                self._controller.snapshot_intended_configs()
            for listener in list(self._listeners):
                listener(new_primary, self.epoch)

    @property
    def primary(self) -> Optional[str]:
        return self._primary

    @property
    def available(self) -> bool:
        return self._primary is not None

    def add_election_listener(self, callback) -> None:
        """Call ``callback(new_primary, epoch)`` after every primary change.

        Listeners run synchronously inside the election, so a takeover
        hook observes the new epoch before any post-election commit can.
        """
        self._listeners.append(callback)

    def check_fence(self, epoch: int, context: str = "") -> None:
        """Admit a commit stamped with ``epoch``, or fence it off.

        Passes iff ``epoch`` is the cluster's current epoch *and* a
        primary is seated.  Anything else is a deposed primary's late
        write (or a write into an empty cluster): the rejection is
        recorded for audit and raised as :class:`EpochFencedError`.
        """
        if epoch == self.epoch and self._primary is not None:
            return
        self.fencing_rejections.append(
            {
                "type": "fencing-rejected",
                "holder_epoch": epoch,
                "current_epoch": self.epoch,
                "primary": self._primary,
                "context": context,
            }
        )
        raise EpochFencedError(epoch, self.epoch, context)

    def fail_replica(self, replica_id: str) -> None:
        self.replicas[replica_id] = False
        self._elect()

    def fail_primary(self) -> Optional[str]:
        """Crash whichever replica is primary; returns its id (chaos hook)."""
        failed = self._primary
        if failed is not None:
            self.fail_replica(failed)
        return failed

    def restore_replica(self, replica_id: str) -> None:
        self.replicas[replica_id] = True
        self._elect()
