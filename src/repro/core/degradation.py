"""The degradation ladder's audit trail.

The paper's §4 failure-handling story assumes the recovery machinery
itself is perfect: a backup is always assignable and circuit switches
always obey.  Under control-plane chaos (:mod:`repro.chaos`) that stops
being true, and the controller walks a *degradation ladder* instead of
crashing:

1. **assign-backup** — allocate a spare from the failure group and
   reconfigure the group's circuit switches (the paper's fast path),
   retrying transient circuit-switch failures per
   :class:`~repro.retry.RetryPolicy`;
2. **alternate backup** — if the wiring keeps failing (e.g. a stuck
   crosspoint on that spare's port), try the next idle spare;
3. **reroute** — with no workable spare left, hand the slot to global
   optimal rerouting (:mod:`repro.routing.reroute_global`): the
   architecture degrades to exactly the fat-tree baseline of §2.2 for
   the affected traffic, rather than stranding it;
4. **human intervention** — the true last resort, only when the
   operator has disabled graceful degradation.

Every walk down the ladder is recorded as a :class:`DegradationReport`
— one :class:`DegradationStep` per rung attempted — so a chaos campaign
can audit *why* each recovery ended where it did.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["DegradationStep", "DegradationReport"]


@dataclass(frozen=True)
class DegradationStep:
    """One rung of the ladder, attempted during one recovery.

    Attributes:
        action: ``"assign-backup"`` (allocate + wire a spare),
            ``"allocate-backup"`` (the allocation itself, when it fails),
            or ``"reroute"`` (fall back to global optimal rerouting).
        target: the spare / failure group / routing domain acted on.
        attempts: circuit-reconfiguration attempts spent on this rung
            (>1 means the retry policy was exercised).
        outcome: ``"ok"``, ``"failed"``, ``"exhausted"``, or
            ``"skipped"``.
        detail: free-form context (the last error, the halt reason, ...).
    """

    action: str
    target: str
    attempts: int
    outcome: str
    detail: str = ""

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class DegradationReport:
    """The auditable record of one recovery's walk down the ladder.

    ``outcome`` summarises where the walk ended:

    * ``"recovered"`` — a backup switch took over (possibly after
      retries or on an alternate spare);
    * ``"rerouted"`` — no backup was workable; the affected slot was
      handed to global optimal rerouting;
    * ``"stranded"`` — no backup was workable and graceful degradation
      is disabled: the slot stays dark until repair (the legacy
      behaviour, still the default).
    """

    kind: str  # "node" | "link"
    logical: str
    time: float
    steps: tuple[DegradationStep, ...]
    outcome: str

    @property
    def degraded(self) -> bool:
        """True when the fast path (first spare, first attempt) failed."""
        if self.outcome != "recovered":
            return True
        return len(self.steps) > 1 or any(s.attempts > 1 for s in self.steps)

    @property
    def retries(self) -> int:
        """Total circuit-reconfiguration retries spent across all rungs."""
        return sum(max(0, s.attempts - 1) for s in self.steps)

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "logical": self.logical,
            "time": self.time,
            "outcome": self.outcome,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "DegradationReport":
        return cls(
            kind=data["kind"],
            logical=data["logical"],
            time=data["time"],
            outcome=data["outcome"],
            steps=tuple(DegradationStep(**s) for s in data["steps"]),
        )
