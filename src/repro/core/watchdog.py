"""Watchdog simulation: failure *detection* in the loop (paper §4.1).

:mod:`repro.core.simadapter` charges detection as a constant (the probe
interval) inside the recovery latency.  This module closes the loop
properly: switches die *silently*; the controller only learns about it
because keep-alive messages stop arriving.  Detection latency then
*emerges* from the probe schedule — a switch that dies right after a
probe boundary is detected ``miss_threshold`` intervals later, one that
dies right before is detected almost a full interval sooner — and the
distribution of application-visible stalls follows.

Mechanically: a silent failure takes the logical element down and stops
its heartbeats; at the next probe boundary where the switch has been
silent longer than ``miss_threshold`` intervals, the controller's real
:meth:`detect_silent_switches` (fed with the heartbeats every healthy
switch would have sent) flags it, recovery runs, and only the *control +
reconfiguration* remainder is charged before the element returns.
"""

from __future__ import annotations

from ..simulation.engine import FluidSimulation
from ..simulation.flow import CoflowSpec
from .controller import ShareBackupController
from .sharebackup import ShareBackupNetwork
from .simadapter import ShareBackupSimulation

__all__ = ["WatchdogSimulation"]


class WatchdogSimulation(ShareBackupSimulation):
    """ShareBackup simulation where failures must be *detected*, not told."""

    def __init__(
        self,
        net: ShareBackupNetwork,
        trace: list[CoflowSpec],
        controller: ShareBackupController | None = None,
        horizon: float | None = None,
    ) -> None:
        super().__init__(net, trace, controller=controller, horizon=horizon)
        #: physical switch → time it went silent (pending detection)
        self._silent_since: dict[str, float] = {}
        #: healthy switches whose keep-alives are being lost in transit
        #: (chaos): they look exactly like dead switches to the controller.
        self.heartbeat_suppressed: set[str] = set()
        self.detections: list[tuple[str, float, float]] = []  # (switch, died, detected)

    # ------------------------------------------------------------------

    def probe_interval(self) -> float:
        return self.controller.timing.probe_interval

    def detection_deadline(self, death_time: float) -> float:
        """First probe boundary at which the silence exceeds the threshold.

        The arithmetic lives on the controller
        (:meth:`ShareBackupController.detection_deadline`) so the
        service's boundary scan and this call-driven simulation detect
        at identical instants.
        """
        return self.controller.detection_deadline(death_time)

    def inject_silent_switch_failure(self, time: float, logical_switch: str) -> None:
        """The switch dies at ``time`` without telling anyone."""

        def die(sim: FluidSimulation) -> None:
            sim._mutate(lambda: sim.topo.fail_node(logical_switch))
            physical = self.net.serving_switch(logical_switch)
            self._silent_since[physical] = time

        self.sim.schedule_action(time, die, label=f"silent-fail:{logical_switch}")
        self.sim.schedule_action(
            self.detection_deadline(time),
            self._probe_tick,
            label=f"probe-tick:{logical_switch}",
        )

    def inject_heartbeat_loss(
        self, time: float, logical_switch: str, duration: float = 0.0
    ) -> None:
        """Keep-alives from a *healthy* switch stop reaching the controller.

        Failure detection cannot distinguish this from death: if the loss
        outlives the miss threshold the controller performs a spurious
        failover (the slot moves to a spare while the old switch is fine —
        the cost of the paper's keep-alive detection under control-plane
        faults).  A loss shorter than the threshold is absorbed silently:
        heartbeats resume before any probe boundary condemns the switch.
        """

        def lose(sim: FluidSimulation) -> None:
            physical = self.net.serving_switch(logical_switch)
            self.heartbeat_suppressed.add(physical)
            self._silent_since[physical] = time
            if duration > 0:

                def resume(s: FluidSimulation) -> None:
                    self.heartbeat_suppressed.discard(physical)
                    pending = self._silent_since.pop(physical, None)
                    if pending is not None and self.net.physical_health.get(
                        physical, False
                    ):
                        # Not yet condemned: the backlog of heartbeats
                        # arrives and the silence window closes.
                        self.controller.heartbeat(physical, s.clock.now)

                sim.schedule_action(
                    time + duration, resume, label=f"heartbeat-resume:{physical}"
                )

        self.sim.schedule_action(
            time, lose, label=f"heartbeat-loss:{logical_switch}"
        )
        self.sim.schedule_action(
            self.detection_deadline(time),
            self._probe_tick,
            label=f"probe-tick:{logical_switch}",
        )

    # ------------------------------------------------------------------

    def _probe_tick(self, sim: FluidSimulation) -> None:
        """One controller probe round at the current instant."""
        now = sim.clock.now
        # Every switch that is still alive has been heartbeating all along
        # (unless chaos is eating its keep-alives in transit).
        for physical, healthy in self.net.physical_health.items():
            if (
                healthy
                and physical not in self._silent_since
                and physical not in self.heartbeat_suppressed
            ):
                self.controller.heartbeat(physical, now)
        for physical in self.controller.detect_silent_switches(now):
            died = self._silent_since.pop(physical, None)
            if died is None:
                continue  # already handled (or a spare going quiet)
            logical = self._logical_of_physical(physical)
            if logical is None:
                continue
            self.detections.append((physical, died, now))
            report = self.controller.handle_node_failure(logical, now=now)
            self.reports.append(report)
            if report.fully_recovered:
                # Detection already elapsed in simulated time; pay only the
                # control-plane + circuit-reconfiguration remainder.
                remainder = report.breakdown.control + report.breakdown.reconfiguration
                sim.schedule_action(
                    now + remainder,
                    lambda s, name=logical: s._mutate(
                        lambda: s.topo.restore_node(name)
                    ),
                    label=f"watchdog-recovered:{logical}",
                )
            elif report.degraded:
                self._activate_fallback(sim)

    def _logical_of_physical(self, physical: str) -> str | None:
        for group in self.net.groups.values():
            logical = group.logical_of(physical)
            if logical is not None:
                return logical
        return None

    # ------------------------------------------------------------------

    def detection_latency(self, physical: str) -> float | None:
        """Measured death→detection delay for a handled failure."""
        for name, died, detected in self.detections:
            if name == physical:
                return detected - died
        return None
