"""The ShareBackup network: a fat-tree whose switch layers sit behind
configurable circuit switches so a small shared pool of backup switches
can replace any failed switch (paper Section 3, Figures 2–3).

Structure for parameter ``k`` (fat-tree arity) and ``n`` (backups per
failure group), with ``h = k/2``:

* the **logical** network is a plain ``k``-ary fat-tree — routing, hosts
  and applications only ever see this;
* each pod holds three sets of ``h`` circuit switches spliced into the
  host–edge (layer 1), edge–aggregation (layer 2) and aggregation–core
  (layer 3) cables, each a ``(h+n+2)×(h+n+2)`` crossbar;
* failure groups: the ``h`` edge switches of a pod (+ ``n`` spare edges),
  the ``h`` aggregation switches of a pod (+ ``n`` spare aggs), and for
  each ``j < h`` the ``h`` core switches with global index ≡ ``j``
  (mod ``h``) (+ ``n`` spare cores) — ``5k/2`` groups in total;
* circuit switches of one layer of a pod are chained into a ring through
  their side ports for offline failure diagnosis (Figure 4).

Wiring (the concrete realisation of Figure 3; ``m, a, j < h``):

=========  =======================================  =========================
circuit    down-side port ``d{x}``                  up-side port ``u{x}``
=========  =======================================  =========================
CS.1.i.j   host ``H.i.x.j``                         edge ``E.i.x`` port host-j
CS.2.i.j   edge ``E.i.x`` up-interface j            agg ``A.i.x`` down-if j
CS.3.i.j   agg ``A.i.x`` up-interface j             core ``C.(x·h+j)`` pod-if i
=========  =======================================  =========================

Backup switches occupy device ports ``h..h+n-1`` on their side, cabled
but initially *internally unconnected* — exactly the paper's "the ports
to backup switches are unconnected internally".

Initial internal configuration: layers 1 and 3 are straight-through
(``d{x} ↔ u{x}``); layer 2 uses the rotational shuffle
``d{m} ↔ u{(m+j) mod h}`` so that the ``h`` circuit switches jointly
realise the pod's complete edge×aggregation bipartite mesh ("we use a
rotational wiring pattern in the circuit switches to achieve this
shuffle connectivity").

A failover never moves a cable: for each circuit switch the failed
switch touches, its device port's circuit is re-pointed at the spare's
port (same interface position), so the spare inherits the failed
switch's connectivity *verbatim*.  :meth:`derive_logical_adjacency`
recomputes the logical topology by walking cables and circuits, and
equivalence with the fat-tree is the core invariant the test suite
checks before and after arbitrary failover sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.fattree import FatTree, agg_name, core_name, edge_name, host_name
from .circuit_switch import (
    CROSSPOINT_RECONFIG_SECONDS,
    CircuitSwitch,
    CSPort,
    Endpoint,
)
from .failure_group import FailureGroup, GroupLayer

__all__ = [
    "ShareBackupNetwork",
    "backup_edge_name",
    "backup_agg_name",
    "backup_core_name",
    "cs_name",
]


def backup_edge_name(pod: int, v: int) -> str:
    return f"BE.{pod}.{v}"


def backup_agg_name(pod: int, v: int) -> str:
    return f"BA.{pod}.{v}"


def backup_core_name(group: int, v: int) -> str:
    return f"BC.{group}.{v}"


def cs_name(layer: int, pod: int, j: int) -> str:
    """Circuit switch :math:`CS_{layer, pod, j}` (paper Table 1 notation)."""
    return f"CS.{layer}.{pod}.{j}"


@dataclass
class _Cable:
    """One end of a device↔circuit-switch cable (the device-side view)."""

    cs: str
    port: CSPort


class ShareBackupNetwork:
    """A complete ShareBackup physical network plus its logical fat-tree."""

    def __init__(
        self,
        k: int,
        n: int | dict[str, int] = 1,
        reconfig_latency: float = CROSSPOINT_RECONFIG_SECONDS,
        link_capacity: float = 10e9,
    ) -> None:
        """``n`` is either one spare count for every failure group, or a
        per-layer mapping ``{"edge": ..., "agg": ..., "core": ...}`` —
        the paper's §6 non-uniform extension ("more backup on critical
        devices and less backup on unimportant ones").  Circuit switches
        between layers with different spare counts get asymmetric sides.
        """
        if k < 4 or k % 2:
            raise ValueError(f"k must be even and >= 4, got {k}")
        if isinstance(n, int):
            n_map = {"edge": n, "agg": n, "core": n}
        else:
            unknown = set(n) - {"edge", "agg", "core"}
            if unknown:
                raise ValueError(f"unknown layers in n: {sorted(unknown)}")
            n_map = {"edge": 1, "agg": 1, "core": 1}
            n_map.update(n)
        if min(n_map.values()) < 1:
            raise ValueError(f"need at least one backup per group, got {n_map}")
        self.k = k
        self.half = k // 2
        self.n_edge = n_map["edge"]
        self.n_agg = n_map["agg"]
        self.n_core = n_map["core"]
        #: Uniform-provisioning view: the largest per-layer spare count
        #: (equals the scalar ``n`` when provisioning is uniform).
        self.n = max(n_map.values())
        self.reconfig_latency = reconfig_latency
        #: The logical network routing/applications see.  ``hosts_per_edge``
        #: is pinned to k/2: ShareBackup's layer-1 circuit switches are
        #: sized for the canonical fat-tree host count.  Subclasses swap
        #: the substrate (the AB variant builds an F10Tree).
        self.logical = self._make_logical(k, link_capacity)
        self.circuit_switches: dict[str, CircuitSwitch] = {}
        self.groups: dict[str, FailureGroup] = {}
        self._group_of_logical: dict[str, str] = {}
        self._group_css: dict[str, list[str]] = {}
        #: (device, interface) → cable descriptor.
        self._device_cable: dict[tuple[str, tuple], _Cable] = {}
        #: Physical packet-switch health (True = able to serve).
        self.physical_health: dict[str, bool] = {}
        #: Hidden per-interface fault state consumed by failure diagnosis.
        self.interface_faults: set[tuple[str, tuple]] = set()

        self._finalize_parameters()
        self._build()

    # ==================================================================
    # construction
    # ==================================================================

    def _make_logical(self, k: int, link_capacity: float) -> FatTree:
        return FatTree(k, hosts_per_edge=self.half, link_capacity=link_capacity)

    def _finalize_parameters(self) -> None:
        """Subclass hook to adjust per-layer provisioning before building
        (the AB variant zeroes the core layer's spares here)."""

    def _layer3_core(self, pod: int, agg_index: int, j: int) -> int:
        """Global core index reached from ``("up", j)`` of an aggregation
        switch — row wiring in the fat-tree; subclasses reskew it."""
        return agg_index * self.half + j

    def _build(self) -> None:
        for pod in range(self.k):
            self._build_pod(pod)
        self._build_core_groups()
        self._build_side_rings()
        for switch in self._all_physical_switches():
            self.physical_health[switch] = True

    def _new_cs(self, name: str, down_spares: int, up_spares: int) -> CircuitSwitch:
        cs = CircuitSwitch(
            name,
            radix=self.half + down_spares,
            up_radix=self.half + up_spares,
            reconfig_latency=self.reconfig_latency,
        )
        self.circuit_switches[name] = cs
        return cs

    def _splice(
        self, cs: CircuitSwitch, port: CSPort, device: str, iface: tuple
    ) -> None:
        cs.splice(port, ("device", (device, iface)))
        self._device_cable[(device, iface)] = _Cable(cs.name, port)

    def _build_pod(self, pod: int) -> None:
        h = self.half
        edges = [edge_name(pod, m) for m in range(h)]
        aggs = [agg_name(pod, a) for a in range(h)]
        backup_edges = [backup_edge_name(pod, v) for v in range(self.n_edge)]
        backup_aggs = [backup_agg_name(pod, v) for v in range(self.n_agg)]

        layer1, layer2, layer3 = [], [], []
        for j in range(h):
            # ---- layer 1: hosts below, edges above --------------------
            # (down side sized like the up side per the paper's symmetric
            # (k/2+n+2)^2 crossbars; its spare ports stay uncabled —
            # hosts have no backups)
            cs1 = self._new_cs(cs_name(1, pod, j), self.n_edge, self.n_edge)
            layer1.append(cs1.name)
            for m in range(h):
                self._splice(cs1, ("d", m), host_name(pod, m, j), ("nic", 0))
                self._splice(cs1, ("u", m), edges[m], ("host", j))
            for v in range(self.n_edge):
                self._splice(cs1, ("u", h + v), backup_edges[v], ("host", j))
            for m in range(h):
                cs1.connect(("d", m), ("u", m))  # straight-through

            # ---- layer 2: edges below, aggregations above -------------
            cs2 = self._new_cs(cs_name(2, pod, j), self.n_edge, self.n_agg)
            layer2.append(cs2.name)
            for m in range(h):
                self._splice(cs2, ("d", m), edges[m], ("up", j))
                self._splice(cs2, ("u", m), aggs[m], ("down", j))
            for v in range(self.n_edge):
                self._splice(cs2, ("d", h + v), backup_edges[v], ("up", j))
            for v in range(self.n_agg):
                self._splice(cs2, ("u", h + v), backup_aggs[v], ("down", j))
            for m in range(h):
                cs2.connect(("d", m), ("u", (m + j) % h))  # rotational shuffle

            # ---- layer 3: aggregations below, cores above -------------
            cs3 = self._new_cs(cs_name(3, pod, j), self.n_agg, self.n_core)
            layer3.append(cs3.name)
            for a in range(h):
                self._splice(cs3, ("d", a), aggs[a], ("up", j))
                self._splice(
                    cs3, ("u", a), core_name(self._layer3_core(pod, a, j)), ("pod", pod)
                )
            for v in range(self.n_agg):
                self._splice(cs3, ("d", h + v), backup_aggs[v], ("up", j))
            for v in range(self.n_core):
                self._splice(
                    cs3, ("u", h + v), backup_core_name(j, v), ("pod", pod)
                )
            for a in range(h):
                cs3.connect(("d", a), ("u", a))  # straight-through

        edge_group = FailureGroup(
            group_id=f"FG.edge.{pod}",
            layer=GroupLayer.EDGE,
            logical_slots=tuple(edges),
            physical_backups=tuple(backup_edges),
        )
        agg_group = FailureGroup(
            group_id=f"FG.agg.{pod}",
            layer=GroupLayer.AGGREGATION,
            logical_slots=tuple(aggs),
            physical_backups=tuple(backup_aggs),
        )
        self._register_group(edge_group, layer1 + layer2)
        self._register_group(agg_group, layer2 + layer3)

    def _build_core_groups(self) -> None:
        h, k = self.half, self.k
        for j in range(h):
            members = tuple(core_name(m * h + j) for m in range(h))
            group = FailureGroup(
                group_id=f"FG.core.{j}",
                layer=GroupLayer.CORE,
                logical_slots=members,
                physical_backups=tuple(
                    backup_core_name(j, v) for v in range(self.n_core)
                ),
            )
            css = [cs_name(3, pod, j) for pod in range(k)]
            self._register_group(group, css)

    def _register_group(self, group: FailureGroup, css: list[str]) -> None:
        self.groups[group.group_id] = group
        self._group_css[group.group_id] = css
        for slot in group.logical_slots:
            self._group_of_logical[slot] = group.group_id

    def _build_side_rings(self) -> None:
        """Chain each pod-layer's circuit switches into a ring (Figure 4).

        Ring cables run side-port(1) → side-port(0) of the next switch,
        on both the down side and the up side, so diagnosis can reach
        suspect interfaces attached to either side.
        """
        h = self.half
        for pod in range(self.k):
            for layer in (1, 2, 3):
                names = [cs_name(layer, pod, j) for j in range(h)]
                for j, name in enumerate(names):
                    nxt = names[(j + 1) % h]
                    for side_kind in ("ds", "us"):
                        self.circuit_switches[name].splice(
                            (side_kind, 1), ("cs", (nxt, (side_kind, 0)))
                        )
                        self.circuit_switches[nxt].splice(
                            (side_kind, 0), ("cs", (name, (side_kind, 1)))
                        )

    # ==================================================================
    # inventory / accessors
    # ==================================================================

    def _all_physical_switches(self) -> list[str]:
        out = set()
        for group in self.groups.values():
            out.update(group.all_physical())
        return sorted(out)

    def group_of(self, logical_switch: str) -> FailureGroup:
        return self.groups[self._group_of_logical[logical_switch]]

    def circuit_switches_of(self, group_id: str) -> list[CircuitSwitch]:
        return [self.circuit_switches[name] for name in self._group_css[group_id]]

    def serving_switch(self, logical: str) -> str:
        """Physical switch currently serving a logical slot."""
        return self.group_of(logical).physical_of(logical)

    def cable_of(self, device: str, iface: tuple) -> _Cable:
        return self._device_cable[(device, iface)]

    @property
    def num_circuit_switches(self) -> int:
        return len(self.circuit_switches)

    @property
    def num_backup_switches(self) -> int:
        return sum(g.n for g in self.groups.values())

    @property
    def circuit_ports_per_side(self) -> int:
        """The scalability-limiting port count ``k/2 + n + 2`` (§5.3)."""
        return self.half + self.n + 2

    # ==================================================================
    # physical signal traversal
    # ==================================================================

    def physical_neighbor(
        self, device: str, iface: tuple
    ) -> tuple[str, tuple] | None:
        """Follow the cable from ``(device, iface)`` through circuit
        switches (including side-port chains) to the far device interface.

        Returns ``None`` when the light dies — unconnected circuit, a
        down circuit switch, or a chain loop guard trip.
        """
        cable = self._device_cable.get((device, iface))
        if cable is None:
            return None
        visited: set[tuple[str, CSPort]] = set()
        cs, port = cable.cs, cable.port
        while True:
            if (cs, port) in visited:
                return None  # mis-configured circuit loop
            visited.add((cs, port))
            outcome = self.circuit_switches[cs].traverse(port)
            if outcome is None:
                return None
            kind, payload = outcome
            if kind == "device":
                return payload  # (device name, interface key)
            cs, port = payload  # hop to the chained circuit switch

    def derive_logical_adjacency(self) -> set[frozenset[str]]:
        """The logical topology induced by cables + circuits + assignment.

        Each physically-connected interface pair is reported as a pair of
        *logical* names (hosts stay themselves; serving switches map back
        to their logical slot).  Spare switches that currently serve no
        slot contribute nothing — their circuits are dark.
        """
        logical_of_physical: dict[str, str] = {}
        for group in self.groups.values():
            for slot in group.logical_slots:
                logical_of_physical[group.physical_of(slot)] = slot

        edges: set[frozenset[str]] = set()
        for (device, iface), _cable in self._device_cable.items():
            if device.startswith(("CS.",)):
                continue
            src_logical = logical_of_physical.get(device, device)
            if device in self.physical_health and device not in logical_of_physical:
                continue  # dark spare
            far = self.physical_neighbor(device, iface)
            if far is None:
                continue
            far_device, _far_iface = far
            dst_logical = logical_of_physical.get(far_device, None)
            if far_device not in self.physical_health:
                dst_logical = far_device  # a host
            if dst_logical is None:
                continue  # far side is a dark spare
            edges.add(frozenset((src_logical, dst_logical)))
        return edges

    def verify_fattree_equivalence(self) -> None:
        """Assert the induced logical topology equals the k-ary fat-tree."""
        expected: set[frozenset[str]] = set()
        for link in self.logical.links.values():
            expected.add(frozenset((link.a, link.b)))
        got = self.derive_logical_adjacency()
        missing = expected - got
        extra = got - expected
        if missing or extra:
            raise AssertionError(
                f"logical topology drifted: missing={sorted(map(sorted, missing))[:5]} "
                f"extra={sorted(map(sorted, extra))[:5]} "
                f"(missing {len(missing)}, extra {len(extra)})"
            )

    # ==================================================================
    # failover mechanics (invoked by the controller)
    # ==================================================================

    def failover(self, logical: str, spare: str) -> tuple[int, float]:
        """Re-point every circuit of ``logical``'s serving switch at ``spare``.

        Returns ``(circuit_switches_touched, max_reconfig_latency)`` —
        reconfigurations happen in parallel across circuit switches, so
        recovery pays the *max*, not the sum (Section 5.3).

        The reconfiguration is two-phase: every involved circuit switch is
        first *validated* (down switch, stuck crosspoint, injected fault),
        and only if all of them accept is anything applied.  A failing
        switch therefore raises :class:`CircuitSwitchError` with the
        network untouched, which is what lets the controller retry — or
        try a different spare — without unwinding partial circuit state.
        """
        group = self.group_of(logical)
        old_physical = group.physical_of(logical)
        plans: list[tuple[CircuitSwitch, dict[CSPort, CSPort | None]]] = []
        for cs in self.circuit_switches_of(group.group_id):
            moves: dict[CSPort, CSPort | None] = {}
            for port, endpoint in list(cs._cables.items()):
                kind, payload = endpoint
                if kind != "device":
                    continue
                dev, iface = payload
                if dev != old_physical:
                    continue
                peer = cs.peer(port)
                spare_port = cs.port_of_endpoint(("device", (spare, iface)))
                if spare_port is None:
                    raise AssertionError(
                        f"{cs.name}: spare {spare} lacks a port for {iface} — "
                        f"{spare} is wired differently from {old_physical}"
                    )
                moves[port] = None
                if peer is not None:
                    moves[spare_port] = peer
            if moves:
                plans.append((cs, moves))
        for cs, moves in plans:  # prepare: all-or-nothing
            cs.validate_reconfigure(moves)
        touched = 0
        latency = 0.0
        for cs, moves in plans:  # commit
            latency = max(latency, cs.reconfigure(moves, preflighted=True))
            touched += 1
        group.failover(logical, spare)
        return touched, latency

    def spare_ports_dark(self, group_id: str) -> bool:
        """True when every free spare of the group has no live circuits."""
        group = self.groups[group_id]
        for spare in group.spares:
            for cs in self.circuit_switches_of(group_id):
                for port, endpoint in cs._cables.items():
                    kind, payload = endpoint
                    if kind == "device" and payload[0] == spare:
                        if cs.peer(port) is not None:
                            return False
        return True
