"""ShareBackup — the paper's contribution.

The pieces, mapped to the paper's sections:

* :mod:`~repro.core.sharebackup` — the architecture (§3): fat-tree +
  circuit-switch layers + shared backup switches + failure groups.
* :mod:`~repro.core.circuit_switch` — the configurable crossbar model.
* :mod:`~repro.core.failure_group` — backup-sharing bookkeeping (§3, §5.1).
* :mod:`~repro.core.controller` — detection & recovery control plane (§4.1),
  circuit-switch failure policy and controller replication (§5.1).
* :mod:`~repro.core.degradation` — the audit trail of the controller's
  degradation ladder (retry → alternate spare → global rerouting).
* :mod:`~repro.core.diagnosis` — offline failure diagnosis (§4.2).
* :mod:`~repro.core.impersonation` — combined VLAN routing tables (§4.3).
* :mod:`~repro.core.switchmodel` — the forwarding plane over the physical
  wiring; proves impersonation end to end.
* :mod:`~repro.core.recovery` — recovery-latency model (§5.3).
* :mod:`~repro.core.simadapter` — ShareBackup inside the fluid simulator.
"""

from .circuit_switch import (
    CROSSPOINT_RECONFIG_SECONDS,
    MEMS_RECONFIG_SECONDS,
    CircuitSwitch,
    CircuitSwitchError,
)
from .controller import (
    DEFAULT_CONTROLLER_RETRY,
    ControllerCluster,
    EpochFencedError,
    HumanInterventionRequired,
    RecoveryReport,
    ShareBackupController,
)
from .degradation import DegradationReport, DegradationStep
from .diagnosis import FailureDiagnosis, InterfaceVerdict, LinkDiagnosis, ProbeOutcome
from .failure_group import FailureGroup, GroupLayer, NoBackupAvailable
from .impersonation import (
    DEFAULT_TCAM_CAPACITY,
    ImpersonationTables,
    agg_downlink_interface,
    combined_edge_entry_count,
    edge_uplink_interface,
)
from .recovery import RecoveryBreakdown, RecoveryTimeModel
from .sharebackup import (
    ShareBackupNetwork,
    backup_agg_name,
    backup_core_name,
    backup_edge_name,
    cs_name,
)
from .sharebackup_ab import ShareBackupABNetwork
from .simadapter import ShareBackupSimulation
from .switchmodel import ForwardingError, PacketSwitchModel, PhysicalForwarder
from .watchdog import WatchdogSimulation

__all__ = [
    "CROSSPOINT_RECONFIG_SECONDS",
    "CircuitSwitch",
    "CircuitSwitchError",
    "ControllerCluster",
    "DEFAULT_CONTROLLER_RETRY",
    "DEFAULT_TCAM_CAPACITY",
    "DegradationReport",
    "DegradationStep",
    "EpochFencedError",
    "FailureDiagnosis",
    "FailureGroup",
    "ForwardingError",
    "GroupLayer",
    "HumanInterventionRequired",
    "ImpersonationTables",
    "InterfaceVerdict",
    "LinkDiagnosis",
    "MEMS_RECONFIG_SECONDS",
    "NoBackupAvailable",
    "PacketSwitchModel",
    "PhysicalForwarder",
    "ProbeOutcome",
    "RecoveryBreakdown",
    "RecoveryReport",
    "RecoveryTimeModel",
    "ShareBackupController",
    "ShareBackupABNetwork",
    "ShareBackupNetwork",
    "ShareBackupSimulation",
    "WatchdogSimulation",
    "agg_downlink_interface",
    "backup_agg_name",
    "backup_core_name",
    "backup_edge_name",
    "combined_edge_entry_count",
    "cs_name",
    "edge_uplink_interface",
]
