"""ShareBackup over F10's AB fat-tree — a §6 generality exploration.

The paper's conclusion claims sharable backup "is readily applicable" to
other symmetric architectures "with different plans for partitioning
failure groups".  Building it over the AB fat-tree makes the fine print
concrete:

* **Edge and aggregation groups carry over verbatim.**  Their wiring is
  pod-local (layers 1 and 2 don't involve the skewed agg–core stage), so
  the pod's k/2 switches + n spares share circuit switches exactly as in
  the fat-tree design.
* **Core groups collapse.**  Sharing requires every group member to
  touch the *same set* of circuit switches.  Under AB wiring, core ``c``
  sits on circuit switch position ``c mod k/2`` in type-A pods but
  position ``c div k/2`` in type-B pods; two distinct cores can never
  agree on both coordinates, so each core's circuit-switch footprint is
  unique and the maximal core failure group is a single switch.  Sharing
  a backup core across a group would require extra circuit-switch ports
  per member group — precisely the cost the fat-tree design avoids.

This module implements the honest hybrid those facts leave available:
ShareBackup protection for the edge and aggregation layers, F10's own
local rerouting for core failures (which is F10's strongest layer — a
core failure is exactly the case its 3-hop local detour handles without
upstream propagation).  Core "groups" are kept as degenerate singletons
with zero spares so the controller's bookkeeping, equivalence checking,
and reporting work uniformly; a core failure is reported unrecoverable
by replacement, which is the cue to fall back to rerouting.
"""

from __future__ import annotations

from ..topology.f10 import F10Tree
from ..topology.fattree import core_name
from .circuit_switch import CROSSPOINT_RECONFIG_SECONDS
from .failure_group import FailureGroup, GroupLayer
from .sharebackup import ShareBackupNetwork, cs_name

__all__ = ["ShareBackupABNetwork"]


class ShareBackupABNetwork(ShareBackupNetwork):
    """ShareBackup wiring over an AB fat-tree (edge/agg layers protected)."""

    def __init__(
        self,
        k: int,
        n: int | dict[str, int] = 1,
        reconfig_latency: float = CROSSPOINT_RECONFIG_SECONDS,
        link_capacity: float = 10e9,
    ) -> None:
        if isinstance(n, dict) and n.get("core", 1) not in (0, 1):
            raise ValueError(
                "AB fat-tree cores cannot share backups (unique circuit "
                "footprints); leave n['core'] unset"
            )
        super().__init__(
            k, n=n, reconfig_latency=reconfig_latency, link_capacity=link_capacity
        )

    # ------------------------------------------------------------------
    # construction overrides
    # ------------------------------------------------------------------

    def _make_logical(self, k: int, link_capacity: float):
        return F10Tree(k, hosts_per_edge=k // 2, link_capacity=link_capacity)

    def _finalize_parameters(self) -> None:
        # No shared backup cores exist in this variant: AB wiring gives
        # every core a unique circuit-switch footprint, so a spare could
        # replace exactly one core — that is dedicated 1:1 backup, not
        # sharing, and is deliberately not built.
        self.n_core = 0

    def _layer3_core(self, pod: int, agg_index: int, j: int) -> int:
        """Core reached from ``("up", j)`` of aggregation ``agg_index``."""
        return self.logical.core_of_pod(pod, agg_index, j)

    def _build_core_groups(self) -> None:
        """Degenerate singleton groups: one per core, zero spares."""
        h = self.half
        for c in range(h * h):
            group = FailureGroup(
                group_id=f"FG.core.single.{c}",
                layer=GroupLayer.CORE,
                logical_slots=(core_name(c),),
                physical_backups=(),
            )
            css = []
            for pod in range(self.k):
                if F10Tree.pod_type(pod) == "A":
                    css.append(cs_name(3, pod, c % h))
                else:
                    css.append(cs_name(3, pod, c // h))
            self._register_group(group, css)

    # The base builder wires layer 3 via core_name(a*h + j); rewiring per
    # pod type needs a hook, so we override _build_pod's layer-3 splice by
    # re-implementing only the core-index computation.  To avoid copying
    # the whole builder, the base class is adjusted to call
    # self._layer3_core (see sharebackup.py).

    @property
    def protected_layers(self) -> tuple[str, ...]:
        return ("edge", "aggregation")

    def core_is_replaceable(self, core: str) -> bool:
        """Always False here: the spare pool of a singleton group is empty."""
        return bool(self.group_of(core).spares)
