"""Failure groups: the unit of backup sharing (paper Section 3).

A failure group clusters the ``k/2`` same-role switches that share a set
of circuit switches — the edge switches of a pod, the aggregation
switches of a pod, or the ``k/2`` core switches whose global indices are
congruent modulo ``k/2`` — plus the ``n`` backup switches wired
identically.  ShareBackup's capacity guarantee (Section 5.1) is per
group: ``n`` concurrent switch failures per group are recoverable.

The group tracks the *role assignment*: which physical switch currently
serves each logical slot.  After a recovery the roles rotate — the
paper keeps the backup online and turns the repaired switch into the
new spare ("it is unnecessary to switch back"), so assignment is a
bijection logical-slot → physical-switch that drifts over time, with the
left-over physical switches forming the free-spare pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["GroupLayer", "FailureGroup", "NoBackupAvailable"]


class NoBackupAvailable(Exception):
    """The group's spare pool is exhausted (more than ``n`` failures)."""


class GroupLayer(Enum):
    EDGE = "edge"
    AGGREGATION = "aggregation"
    CORE = "core"


@dataclass
class FailureGroup:
    """One failure group and its role bookkeeping.

    Attributes:
        group_id: e.g. ``"FG.edge.3"`` (pod 3's edge group) or
            ``"FG.core.1"`` (cores ≡ 1 mod k/2).
        layer: which switch layer the group covers.
        logical_slots: the logical switch names, e.g. ``["E.3.0", ...]``;
            these are what routing and the rest of the network see.
        physical_backups: names of the dedicated spare switches built into
            the group, e.g. ``["BE.3.0"]``.
    """

    group_id: str
    layer: GroupLayer
    logical_slots: tuple[str, ...]
    physical_backups: tuple[str, ...]
    assignment: dict[str, str] = field(default_factory=dict)
    spares: list[str] = field(default_factory=list)
    #: Physical switches taken out of service (awaiting repair/diagnosis).
    offline: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        if not self.assignment:
            self.assignment = {slot: slot for slot in self.logical_slots}
        if not self.spares and not self.offline:
            self.spares = list(self.physical_backups)

    # ------------------------------------------------------------------

    @property
    def n(self) -> int:
        """The group's spare provisioning (the paper's ``n``)."""
        return len(self.physical_backups)

    @property
    def backup_ratio(self) -> float:
        """Section 5.1's robustness figure: ``n / (k/2)``."""
        return self.n / len(self.logical_slots)

    def physical_of(self, logical: str) -> str:
        """The physical switch currently serving ``logical``."""
        return self.assignment[logical]

    def logical_of(self, physical: str) -> str | None:
        """Which logical slot ``physical`` serves, if any."""
        for logical, phys in self.assignment.items():
            if phys == physical:
                return logical
        return None

    def all_physical(self) -> list[str]:
        """Every physical switch belonging to the group."""
        return sorted(set(self.logical_slots) | set(self.physical_backups))

    @property
    def available_spares(self) -> int:
        return len(self.spares)

    # ------------------------------------------------------------------
    # recovery-time transitions
    # ------------------------------------------------------------------

    def allocate_spare(self) -> str:
        """Take a free spare for a failover (FIFO for determinism)."""
        if not self.spares:
            raise NoBackupAvailable(
                f"{self.group_id}: no backup switch available "
                f"({len(self.offline)} offline, n={self.n})"
            )
        return self.spares.pop(0)

    def failover(self, logical: str, spare: str) -> str:
        """Record that ``spare`` now serves ``logical``; returns the
        physical switch that was serving it (now offline)."""
        if logical not in self.assignment:
            raise KeyError(f"{logical} is not a slot of {self.group_id}")
        old = self.assignment[logical]
        self.assignment[logical] = spare
        self.offline.add(old)
        return old

    def reinstate(self, physical: str) -> None:
        """A repaired/exonerated switch rejoins the spare pool.

        Implements the paper's no-switch-back policy: the switch returns
        as a *backup*, the replacement keeps serving the logical slot.
        """
        if physical not in self.offline:
            raise ValueError(f"{physical} is not offline in {self.group_id}")
        self.offline.discard(physical)
        self.spares.append(physical)

    def validate(self) -> None:
        """Internal-consistency check (used by property tests).

        The serving switches, spares, and offline set must partition the
        group's physical inventory.
        """
        serving = set(self.assignment.values())
        spare_set = set(self.spares)
        if len(self.spares) != len(spare_set):
            raise AssertionError(f"{self.group_id}: duplicate spares {self.spares}")
        if len(serving) != len(self.logical_slots):
            raise AssertionError(f"{self.group_id}: two slots share a switch")
        pools = [serving, spare_set, self.offline]
        for i, a in enumerate(pools):
            for b in pools[i + 1 :]:
                if a & b:
                    raise AssertionError(
                        f"{self.group_id}: pools overlap: {a & b}"
                    )
        everything = serving | spare_set | self.offline
        if everything != set(self.all_physical()):
            raise AssertionError(
                f"{self.group_id}: inventory mismatch "
                f"{everything ^ set(self.all_physical())}"
            )
