"""Recovery-latency model (paper Section 5.3, "Recovering failures as fast
as state of the art").

The paper's accounting:

* every recovery scheme first pays the failure detector's **probing
  interval** (ShareBackup adopts F10's rapid detection, so this term is
  common to all compared systems);
* F10/Aspen then redirect packets to a different local interface —
  effectively free — while classic SDN rerouting pays **~1 ms per
  forwarding-rule update** [He et al., SOSR'15];
* ShareBackup pays **switch→controller** and **controller→circuit-switch**
  messaging (sub-millisecond with an efficient, e.g. in-kernel,
  controller) plus the **circuit reconfiguration** itself: 70 ns for an
  electrical crosspoint, 40 µs for 2D MEMS — negligible.  All circuit
  switches of a failure group reconfigure in parallel, so the term does
  not grow with ``k``.

The model makes those sums explicit so the Section 5.3 benchmark can
print them side by side and assert the paper's conclusion: ShareBackup's
recovery time is in the same band as local rerouting and at or below
SDN-based rerouting.
"""

from __future__ import annotations

from dataclasses import dataclass

from .circuit_switch import CROSSPOINT_RECONFIG_SECONDS, MEMS_RECONFIG_SECONDS

__all__ = ["RecoveryTimeModel", "RecoveryBreakdown"]

#: ~1 ms to modify one forwarding rule through SDN (He et al., SOSR'15).
SDN_RULE_UPDATE_SECONDS: float = 1e-3


@dataclass(frozen=True)
class RecoveryBreakdown:
    """One scheme's recovery time, decomposed."""

    scheme: str
    detection: float
    control: float
    reconfiguration: float

    @property
    def total(self) -> float:
        return self.detection + self.control + self.reconfiguration

    def row(self) -> tuple[str, float, float, float, float]:
        return (
            self.scheme, self.detection, self.control,
            self.reconfiguration, self.total,
        )


@dataclass(frozen=True)
class RecoveryTimeModel:
    """Latency constants; defaults follow the paper's citations.

    ``probe_interval`` is the failure detector's probing period (F10-style
    rapid detection; the same value is charged to every scheme).
    ``controller_hop`` is one switch→controller or controller→device
    message with an efficient controller implementation ("reduced to
    sub-ms level" — we default to 0.2 ms per hop).
    """

    probe_interval: float = 1e-3
    controller_hop: float = 0.2e-3
    controller_processing: float = 0.05e-3
    local_redirect: float = 1e-6  # redirecting packets to another NIC port
    sdn_rule_update: float = SDN_RULE_UPDATE_SECONDS

    def sharebackup(self, technology: str = "crosspoint") -> RecoveryBreakdown:
        """ShareBackup: detect → notify controller → reset circuits.

        ``technology``: ``"crosspoint"`` (electrical, 70 ns) or ``"mems"``
        (optical 2D MEMS, 40 µs).  Circuit switches of the failure group
        reconfigure in parallel — one latency, not ``k/2`` of them.
        """
        try:
            reconfig = {
                "crosspoint": CROSSPOINT_RECONFIG_SECONDS,
                "mems": MEMS_RECONFIG_SECONDS,
            }[technology]
        except KeyError:
            raise ValueError(f"unknown circuit technology {technology!r}") from None
        control = 2 * self.controller_hop + self.controller_processing
        return RecoveryBreakdown(
            scheme=f"sharebackup/{technology}",
            detection=self.probe_interval,
            control=control,
            reconfiguration=reconfig,
        )

    def f10(self) -> RecoveryBreakdown:
        """F10: local detection, redirect to another interface."""
        return RecoveryBreakdown(
            scheme="f10/local",
            detection=self.probe_interval,
            control=0.0,
            reconfiguration=self.local_redirect,
        )

    def aspen(self) -> RecoveryBreakdown:
        """Aspen Tree: same local failover shape as F10."""
        return RecoveryBreakdown(
            scheme="aspen/local",
            detection=self.probe_interval,
            control=0.0,
            reconfiguration=self.local_redirect,
        )

    def sdn_rerouting(self, rules_to_update: int = 1) -> RecoveryBreakdown:
        """Conventional SDN rerouting: detection + per-rule updates."""
        if rules_to_update < 1:
            raise ValueError("at least one rule must change to reroute")
        return RecoveryBreakdown(
            scheme="sdn-rerouting",
            detection=self.probe_interval,
            control=2 * self.controller_hop + self.controller_processing,
            reconfiguration=rules_to_update * self.sdn_rule_update,
        )

    def comparison(self) -> list[RecoveryBreakdown]:
        """All schemes, for the Section 5.3 benchmark table."""
        return [
            self.sharebackup("crosspoint"),
            self.sharebackup("mems"),
            self.f10(),
            self.aspen(),
            self.sdn_rerouting(),
        ]
