"""Await-segmented control-flow graphs for ``async def`` bodies.

The concurrency rules (SVC010–SVC013) reason about *interleavings*: in
asyncio, a coroutine runs atomically between awaits, so the unit of
analysis is not the statement but the **segment** — a maximal await-free
region of the control-flow graph.  This module builds that graph for one
``async def``: basic blocks of :class:`Op` events in evaluation order
(shared-state reads and writes, awaits, blocking calls), with edges for
branches, loops, ``try`` dispatch, and ``async with``/``async for``
suspension points.

Shared state is modelled by name, conservatively:

* ``self.<attr>`` — instance attributes read or written through the
  literal ``self`` receiver (including mutator-method calls such as
  ``self.items.append(x)``, which count as an *atomic* read+write);
* ``g:<name>`` — module-level names from the supplied ``module_globals``
  set, unless the function shadows the name locally.

Lock regions are the *lexically structured* ones: ``async with <lock>:``
where the context expression names a known lock attribute or carries a
lock-ish name.  Every :class:`Op` with kind ``"await"`` records the
locks lexically held at that suspension point, plus a classification of
why the wait is unbounded (bare future, ``.get()``/``.wait()``,
``gather``, ``sleep``) — the raw material for SVC012's lock-discipline
judgement and for SVC010's "outside a lock region" exemption.
Manual ``lock.acquire()``/``release()`` pairing is judged separately
(:mod:`repro.checks.concurrency`), not through the graph.

The builder is deliberately forgiving: unknown statement kinds emit
their expressions and fall through, nested function/class bodies are
skipped (they run on their own schedule), and unreachable blocks simply
receive no dataflow — a linter must survive any tree the parser accepts.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field

__all__ = [
    "Op",
    "Block",
    "ControlFlowGraph",
    "build_cfg",
    "dotted_name",
    "blocking_call_reason",
]

#: Import-resolvable calls that block the calling thread.  Lives here —
#: the leaf of the checks import graph — because both SVC001 (per-file)
#: and the CFG feeding SVC012 (whole-program) classify blocking calls,
#: and they must agree on what "blocking" means.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system", "os.wait", "os.waitpid",
        "subprocess.run", "subprocess.call", "subprocess.check_call",
        "subprocess.check_output", "subprocess.Popen",
        "socket.create_connection", "socket.getaddrinfo",
        "urllib.request.urlopen",
        "http.client.HTTPConnection", "http.client.HTTPSConnection",
    }
)

#: Builtins that block on the terminal or filesystem.
BLOCKING_BUILTINS = frozenset({"open", "input"})

#: Method names that are synchronous filesystem I/O wherever they appear
#: (the ``pathlib.Path`` read/write family).
BLOCKING_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def blocking_call_reason(
    resolve: "Callable[[ast.expr], str | None]", node: ast.Call
) -> str | None:
    """Why ``node`` blocks the event-loop thread, ``None`` if it doesn't."""
    resolved = resolve(node.func)
    if resolved in BLOCKING_CALLS:
        return f"call to {resolved}()"
    if (
        isinstance(node.func, ast.Name)
        and node.func.id in BLOCKING_BUILTINS
        and resolved is None  # not an import-shadowed name
    ):
        return f"call to builtin {node.func.id}()"
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in BLOCKING_METHODS
    ):
        return f"synchronous file I/O via .{node.func.attr}()"
    return None

#: Method names that mutate their receiver in place — receiver counts as
#: an (atomic) read+write of the shared variable.
MUTATOR_METHODS = frozenset(
    {
        "append", "appendleft", "add", "update", "extend", "insert",
        "remove", "discard", "pop", "popleft", "popitem", "clear",
        "setdefault", "sort", "reverse",
    }
)

#: Attribute-call tails whose await may park for an unbounded time (or,
#: for ``sleep``, deliberately parks while holding whatever is held).
_UNBOUNDED_AWAIT_ATTRS = frozenset(
    {"get", "wait", "join", "acquire", "gather", "sleep"}
)

#: Import-resolved callables with the same property.
_UNBOUNDED_AWAIT_CALLS = frozenset(
    {"asyncio.gather", "asyncio.wait", "asyncio.sleep"}
)

#: Name fragments that mark an attribute/variable as a lock-like
#: synchronisation primitive even without a resolvable constructor.
_LOCKISH_FRAGMENTS = ("lock", "mutex", "sem", "cond")


@dataclass(frozen=True)
class Op:
    """One atomic event inside a block, in evaluation order."""

    kind: str  #: ``"read"`` | ``"write"`` | ``"await"`` | ``"call"``
    var: str  #: shared-var key for read/write; ``""`` otherwise
    lineno: int
    col: int
    #: Locks lexically held at this point (``await``/``call`` ops).
    locks: tuple[str, ...] = ()
    #: Why this await may park unboundedly (``""`` = bounded/benign).
    unbounded: str = ""
    #: Why this call blocks the loop thread (``""`` = not blocking).
    blocking: str = ""


@dataclass
class Block:
    """A straight-line run of ops with explicit successors."""

    index: int
    ops: list[Op] = field(default_factory=list)
    succs: list[int] = field(default_factory=list)


@dataclass
class ControlFlowGraph:
    """Blocks + edges for one ``async def``; entry is block 0."""

    blocks: list[Block] = field(default_factory=list)
    entry: int = 0

    def all_ops(self) -> Iterator[Op]:
        for block in self.blocks:
            yield from block.ops

    @property
    def await_count(self) -> int:
        return sum(1 for op in self.all_ops() if op.kind == "await")

    def segment_count(self) -> int:
        """Number of await-free segments on a straight-line reading."""
        return self.await_count + 1


def dotted_name(node: ast.expr) -> str:
    """``self._lock`` / ``queue.get`` as a dotted string, ``""`` if not
    a plain name/attribute chain."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else ""
    return ""


def _lockish(key: str, lock_names: frozenset[str]) -> bool:
    if not key:
        return False
    if key in lock_names or key.split(".")[-1] in lock_names:
        return True
    tail = key.split(".")[-1].lower()
    return any(fragment in tail for fragment in _LOCKISH_FRAGMENTS)


def _local_bindings(fn: ast.AsyncFunctionDef) -> tuple[set[str], set[str]]:
    """``(locally_bound, declared_global)`` names of ``fn``'s own scope."""
    bound: set[str] = set()
    declared: set[str] = set()
    args = fn.args
    for arg in (
        *args.posonlyargs, *args.args, *args.kwonlyargs,
        *([args.vararg] if args.vararg else []),
        *([args.kwarg] if args.kwarg else []),
    ):
        bound.add(arg.arg)
    for node in _walk_own_scope(fn):
        if isinstance(node, ast.Global):
            declared.update(node.names)
        elif isinstance(node, ast.Name) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            bound.add(node.id)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
        elif isinstance(node, ast.ExceptHandler) and node.name:
            bound.add(node.name)
        elif isinstance(node, ast.comprehension):
            for leaf in ast.walk(node.target):
                if isinstance(leaf, ast.Name):
                    bound.add(leaf.id)
    return bound - declared, declared


def _walk_own_scope(fn: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk ``fn`` without descending into nested def/class bodies."""
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def build_cfg(
    fn: ast.AsyncFunctionDef,
    *,
    resolve: Callable[[ast.expr], str | None],
    module_globals: frozenset[str] = frozenset(),
    lock_names: frozenset[str] = frozenset(),
    blocking_call: Callable[[ast.Call], str | None] | None = None,
) -> ControlFlowGraph:
    """Build the await-segmented CFG of one ``async def``.

    ``resolve`` maps name/attribute expressions to dotted import
    targets (:meth:`FileContext.resolve`); ``blocking_call`` optionally
    classifies calls that block the loop thread (SVC001's judgement,
    reused so SVC012 agrees with it about what "blocking" means).
    """
    builder = _Builder(
        resolve=resolve,
        module_globals=module_globals,
        lock_names=lock_names,
        blocking_call=blocking_call or (lambda call: None),
    )
    builder.locals_, builder.declared_globals = _local_bindings(fn)
    builder.body(fn.body)
    return builder.cfg


class _Builder:
    """Single-pass recursive CFG construction with a lexical lock stack."""

    def __init__(
        self,
        resolve: Callable[[ast.expr], str | None],
        module_globals: frozenset[str],
        lock_names: frozenset[str],
        blocking_call: Callable[[ast.Call], str | None],
    ) -> None:
        self.resolve = resolve
        self.module_globals = module_globals
        self.lock_names = lock_names
        self.blocking_call = blocking_call
        self.locals_: set[str] = set()
        self.declared_globals: set[str] = set()
        self.cfg = ControlFlowGraph(blocks=[Block(index=0)])
        self.current = 0
        self.locks: list[str] = []
        #: ``(header, exit)`` block indices of enclosing loops.
        self.loop_stack: list[tuple[int, int]] = []

    # -- graph plumbing -------------------------------------------------

    def new_block(self) -> int:
        index = len(self.cfg.blocks)
        self.cfg.blocks.append(Block(index=index))
        return index

    def link(self, src: int, dst: int) -> None:
        succs = self.cfg.blocks[src].succs
        if dst not in succs:
            succs.append(dst)

    def emit(self, op: Op) -> None:
        self.cfg.blocks[self.current].ops.append(op)

    def start_linked_block(self) -> None:
        nxt = self.new_block()
        self.link(self.current, nxt)
        self.current = nxt

    # -- shared-variable classification ---------------------------------

    def var_of(self, node: ast.expr) -> str:
        """Shared-var key of ``node``, ``""`` when not shared state."""
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return f"self.{node.attr}"
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.module_globals and (
                name in self.declared_globals or name not in self.locals_
            ):
                return f"g:{name}"
        return ""

    def read(self, node: ast.expr, var: str) -> None:
        if var:
            self.emit(
                Op("read", var, node.lineno, node.col_offset + 1)
            )

    def write(self, node: ast.AST, var: str) -> None:
        if var:
            lineno = int(getattr(node, "lineno", 1))
            col = int(getattr(node, "col_offset", 0)) + 1
            self.emit(Op("write", var, lineno, col))

    # -- expression emission (evaluation order, approximated) -----------

    def expr(self, node: ast.expr | None) -> None:
        if node is None:
            return
        if isinstance(node, ast.Await):
            self.expr(node.value)
            self.emit_await(node)
            return
        if isinstance(node, ast.Call):
            self.call(node)
            return
        if isinstance(node, ast.Attribute):
            var = self.var_of(node)
            if var and isinstance(node.ctx, ast.Load):
                self.read(node, var)
            else:
                self.expr(node.value)
            return
        if isinstance(node, ast.Name):
            var = self.var_of(node)
            if var and isinstance(node.ctx, ast.Load):
                self.read(node, var)
            return
        if isinstance(node, ast.Lambda):
            return  # runs later, on its own schedule
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            for comp in node.generators:
                self.expr(comp.iter)
                for condition in comp.ifs:
                    self.expr(condition)
                if comp.is_async:
                    self.emit_await(comp.iter, reason="async-for iteration")
            if isinstance(node, ast.DictComp):
                self.expr(node.key)
                self.expr(node.value)
            else:
                self.expr(node.elt)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child)
            elif isinstance(child, ast.keyword):
                self.expr(child.value)

    def call(self, node: ast.Call) -> None:
        self.expr(node.func)
        for arg in node.args:
            self.expr(arg.value if isinstance(arg, ast.Starred) else arg)
        for kw in node.keywords:
            self.expr(kw.value)
        # Mutator-method calls are an atomic read+write of the receiver.
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in MUTATOR_METHODS:
            self.write(node, self.var_of(func.value))
        blocking = self.blocking_call(node)
        if blocking:
            self.emit(
                Op(
                    "call", "", node.lineno, node.col_offset + 1,
                    locks=tuple(self.locks), blocking=blocking,
                )
            )

    def emit_await(self, anchor: ast.expr, reason: str | None = None) -> None:
        value = anchor.value if isinstance(anchor, ast.Await) else anchor
        self.emit(
            Op(
                "await", "", anchor.lineno, anchor.col_offset + 1,
                locks=tuple(self.locks),
                unbounded=(
                    reason
                    if reason is not None
                    else self.classify_await(value)
                ),
            )
        )

    def classify_await(self, value: ast.expr) -> str:
        """Why the awaited value may park unboundedly (``""`` = benign)."""
        if isinstance(value, (ast.Name, ast.Attribute, ast.Subscript)):
            return "a bare future/awaitable"
        if isinstance(value, ast.Call):
            resolved = self.resolve(value.func)
            if resolved == "asyncio.wait_for":
                return ""  # carries its own timeout
            if resolved in _UNBOUNDED_AWAIT_CALLS:
                return f"{resolved}()"
            func = value.func
            if (
                resolved is None
                and isinstance(func, ast.Attribute)
                and func.attr in _UNBOUNDED_AWAIT_ATTRS
            ):
                return f".{func.attr}()"
        return ""

    # -- assignment targets ---------------------------------------------

    def target(self, node: ast.expr) -> None:
        if isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self.target(element)
            return
        if isinstance(node, ast.Starred):
            self.target(node.value)
            return
        var = self.var_of(node)
        if var:
            self.write(node, var)
            return
        if isinstance(node, ast.Subscript):
            # ``self.table[k] = v`` mutates the container in place —
            # an atomic read+write of the container variable.
            inner = self.var_of(node.value)
            if inner:
                self.read(node.value, inner)
                self.write(node, inner)
            else:
                self.expr(node.value)
            self.expr(node.slice)
            return
        if isinstance(node, ast.Attribute):
            self.expr(node.value)

    # -- statements -----------------------------------------------------

    def body(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: ast.stmt) -> None:
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # nested scopes are analysed on their own
        if isinstance(stmt, ast.Assign):
            self.expr(stmt.value)
            for tgt in stmt.targets:
                self.target(tgt)
        elif isinstance(stmt, ast.AugAssign):
            var = self.var_of(stmt.target)
            if var:
                self.read(stmt.target, var)
            else:
                self.target(stmt.target)
            self.expr(stmt.value)
            if var:
                self.write(stmt, var)
        elif isinstance(stmt, ast.AnnAssign):
            self.expr(stmt.value)
            if stmt.value is not None:
                self.target(stmt.target)
        elif isinstance(stmt, ast.Delete):
            for tgt in stmt.targets:
                self.target(tgt)
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            self.expr(stmt.value)
            if isinstance(stmt, ast.Return):
                self.current = self.new_block()  # fresh, unreachable
        elif isinstance(stmt, ast.Raise):
            self.expr(stmt.exc)
            self.expr(stmt.cause)
            self.current = self.new_block()
        elif isinstance(stmt, ast.If):
            self.if_stmt(stmt)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self.loop_stmt(stmt)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.with_stmt(stmt)
        elif isinstance(stmt, ast.Try):
            self.try_stmt(stmt)
        elif isinstance(stmt, ast.Break):
            if self.loop_stack:
                self.link(self.current, self.loop_stack[-1][1])
            self.current = self.new_block()
        elif isinstance(stmt, ast.Continue):
            if self.loop_stack:
                self.link(self.current, self.loop_stack[-1][0])
            self.current = self.new_block()
        elif isinstance(stmt, ast.Match):
            self.match_stmt(stmt)
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.expr(child)

    def if_stmt(self, stmt: ast.If) -> None:
        self.expr(stmt.test)
        fork = self.current
        then_entry = self.new_block()
        self.link(fork, then_entry)
        self.current = then_entry
        self.body(stmt.body)
        then_exit = self.current
        else_entry = self.new_block()
        self.link(fork, else_entry)
        self.current = else_entry
        self.body(stmt.orelse)
        else_exit = self.current
        join = self.new_block()
        self.link(then_exit, join)
        self.link(else_exit, join)
        self.current = join

    def loop_stmt(self, stmt: ast.While | ast.For | ast.AsyncFor) -> None:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.expr(stmt.iter)
        self.start_linked_block()
        header = self.current
        if isinstance(stmt, ast.While):
            self.expr(stmt.test)
        elif isinstance(stmt, ast.AsyncFor):
            # Each iteration awaits ``__anext__`` — a suspension point.
            self.emit_await(stmt.iter, reason="async-for iteration")
            self.target(stmt.target)
        else:
            self.target(stmt.target)
        exit_block = self.new_block()
        body_entry = self.new_block()
        self.link(header, body_entry)
        self.link(header, exit_block)
        self.loop_stack.append((header, exit_block))
        self.current = body_entry
        self.body(stmt.body)
        self.link(self.current, header)  # back edge
        self.loop_stack.pop()
        self.current = exit_block
        self.body(stmt.orelse)

    def with_stmt(self, stmt: ast.With | ast.AsyncWith) -> None:
        is_async = isinstance(stmt, ast.AsyncWith)
        entered: list[str] = []
        for item in stmt.items:
            self.expr(item.context_expr)
            key = dotted_name(item.context_expr)
            if not key and isinstance(item.context_expr, ast.Call):
                key = dotted_name(item.context_expr.func)
            is_lock = is_async and _lockish(key, self.lock_names)
            if is_async:
                # ``__aenter__`` suspends (for a lock: until acquired) —
                # a suspension point *before* the lock is held.
                self.emit_await(
                    item.context_expr,
                    reason="" if is_lock else self.classify_await(
                        item.context_expr
                    ),
                )
            if is_lock:
                self.locks.append(key or "<lock>")
                entered.append(key or "<lock>")
            if item.optional_vars is not None:
                self.target(item.optional_vars)
        self.body(stmt.body)
        for _ in entered:
            self.locks.pop()
        if is_async and not entered:
            # Generic async CM: ``__aexit__`` may suspend too.
            self.emit_await(stmt.items[-1].context_expr, reason="")

    def try_stmt(self, stmt: ast.Try) -> None:
        before = len(self.cfg.blocks)
        entry = self.current
        self.start_linked_block()
        self.body(stmt.body)
        self.body(stmt.orelse)
        body_exit = self.current
        body_blocks = [entry, *range(before, len(self.cfg.blocks))]
        handler_exits: list[int] = []
        for handler in stmt.handlers:
            handler_entry = self.new_block()
            # An exception may surface after *any* prefix of the body.
            for block in body_blocks:
                self.link(block, handler_entry)
            self.current = handler_entry
            if handler.type is not None:
                self.expr(handler.type)
            self.body(handler.body)
            handler_exits.append(self.current)
        final_entry = self.new_block()
        self.link(body_exit, final_entry)
        for exit_block in handler_exits:
            self.link(exit_block, final_entry)
        if stmt.finalbody:
            # ``finally`` also runs when the body raises uncaught.
            for block in body_blocks:
                self.link(block, final_entry)
        self.current = final_entry
        self.body(stmt.finalbody)

    def match_stmt(self, stmt: ast.Match) -> None:
        self.expr(stmt.subject)
        fork = self.current
        join = self.new_block()
        self.link(fork, join)  # no case may match
        for case in stmt.cases:
            case_entry = self.new_block()
            self.link(fork, case_entry)
            self.current = case_entry
            if case.guard is not None:
                self.expr(case.guard)
            self.body(case.body)
            self.link(self.current, join)
        self.current = join
