"""Numeric contracts of the water-fill kernels (NUM001–NUM004).

The vectorized allocator (:mod:`repro.simulation.columnar`) must stay
*bit-identical* to the scalar reference solver
(:mod:`repro.simulation.fairshare`) — that equivalence is the engine's
whole correctness argument — and ROADMAP item 1 additionally reserves
it for ``numba.njit`` compilation behind the ``[speed]`` extra.  Both
claims are numeric, not syntactic, so a general linter cannot see them
break.  These rules judge the facts the abstract interpreter
(:mod:`repro.checks.numeric`) extracts per ``@kernel`` function:

* **NUM001** — a value provably narrows on the way into an array:
  float results stored into integer buffers, ``float64`` into
  ``float32``, and friends.  Silent narrowing is exactly how the
  bit-identity proof dies without a single test failing on small
  inputs.
* **NUM002** — a shape-incompatibility witness: two symbolic shapes
  that can never broadcast (``(rows, width)`` against ``(rows,)``),
  a reduction over an axis the array does not have, more indices than
  the array has dimensions.
* **NUM003** — an aliasing hazard: an in-place write (``out=``,
  augmented assignment, ``.fill``) into a buffer that a later read in
  the same pass observes through a *different* view — the classic
  "workspace reused while still borrowed" bug that only manifests at
  sizes where views overlap.
* **NUM004** — a construct outside the ``nopython`` subset inside a
  ``@kernel`` function: dicts/sets, try/except, closures, untyped
  Python calls.  Calls into project code are resolved against the
  whole-program call graph — calling another ``@kernel`` is fine,
  calling anything else boxes objects and forces an object-mode
  fallback the day the JIT lands.

The first three are pure replays of cached per-file facts; NUM004 is
the one judgement that needs the :class:`ProjectModel`, to classify
cross-module calls.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..diagnostics import Diagnostic
from ..registry import ProjectRule, register_project

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import FunctionSummary
    from ..numeric import NumericSummary
    from ..project import FunctionKey, ProjectModel

__all__ = [
    "KernelDtypeNarrowing",
    "KernelShapeMismatch",
    "KernelAliasingHazard",
    "KernelNopythonUnsafe",
]

#: The numeric core these rules police.  Kernels registered elsewhere
#: are still extracted (the facts ride the cache) but not judged — the
#: contract is only load-bearing where the bit-identity proof lives.
_NUMERIC_SCOPE = ("repro.simulation.columnar", "repro.simulation.fairshare")


def _kernel_items(
    model: "ProjectModel",
) -> Iterator[tuple["FunctionKey", "NumericSummary"]]:
    for key in sorted(model.functions):
        fn: "FunctionSummary" = model.functions[key]
        if fn.numeric is not None:
            yield key, fn.numeric


def _location(
    model: "ProjectModel", key: "FunctionKey", lineno: int, col: int
) -> tuple[str, int, int]:
    return (model.modules[key[0]].path, lineno, col)


class _IssueRule(ProjectRule):
    """Shared replay loop: one extraction ``kind`` → one diagnostic."""

    kind = ""  #: the NumericIssue.kind this rule replays

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        for key, summary in _kernel_items(model):
            for issue in summary.issues:
                if issue.kind != self.kind:
                    continue
                path, line, col = _location(
                    model, key, issue.lineno, issue.col
                )
                yield self.diagnostic(
                    path, line, col, f"kernel {key[1]}: {issue.detail}"
                )


@register_project
class KernelDtypeNarrowing(_IssueRule):
    """NUM001: silent dtype narrowing or float→int mixing in a kernel."""

    code = "NUM001"
    name = "kernel-dtype-narrowing"
    kind = "narrowing"
    rationale = (
        "The vectorized water-fill must reproduce the scalar solver "
        "bit-for-bit; storing a float64 result into a float32 or "
        "integer buffer rounds silently and the divergence only shows "
        "at scales no unit test reaches. Keep every buffer at its "
        "declared dtype and cast explicitly where truncation is meant."
    )
    scope = _NUMERIC_SCOPE


@register_project
class KernelShapeMismatch(_IssueRule):
    """NUM002: a provable broadcast/shape incompatibility."""

    code = "NUM002"
    name = "kernel-shape-mismatch"
    kind = "shape"
    rationale = (
        "Symbolic shapes that can never broadcast — (rows, width) "
        "against (rows,), an axis the array does not have — either "
        "crash on the first non-degenerate input or, worse, broadcast "
        "into the wrong cells and corrupt rates silently. Declared "
        "dims are a contract; reshape or index explicitly."
    )
    scope = _NUMERIC_SCOPE


@register_project
class KernelAliasingHazard(_IssueRule):
    """NUM003: in-place write observed through another view."""

    code = "NUM003"
    name = "kernel-aliasing-hazard"
    kind = "alias"
    rationale = (
        "An in-place write (out=, +=, .fill) into a buffer that a "
        "later read observes through a different view makes the pass "
        "order-dependent: results change with numpy's traversal order "
        "and with the JIT's. Copy before mutating, or write to a "
        "buffer nothing else borrows."
    )
    scope = _NUMERIC_SCOPE


@register_project
class KernelNopythonUnsafe(_IssueRule):
    """NUM004: construct outside the nopython subset in a @kernel."""

    code = "NUM004"
    name = "kernel-nopython-unsafe"
    kind = "nopython"
    rationale = (
        "@kernel marks a function as a numba nopython candidate "
        "(ROADMAP item 1): dicts, try/except, closures, and untyped "
        "Python calls all force an object-mode fallback, which is "
        "slower than the interpreter and lands the day the [speed] "
        "extra ships. Keep kernels on arrays, scalars, and other "
        "kernels."
    )
    scope = _NUMERIC_SCOPE

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        yield from super().check(model)
        for key, summary in _kernel_items(model):
            for call in summary.unresolved_calls:
                if self._calls_kernel(model, key, call.ref):
                    continue
                path, line, col = _location(
                    model, key, call.lineno, call.col
                )
                target = call.ref.split(":", 1)[1]
                yield self.diagnostic(
                    path,
                    line,
                    col,
                    f"kernel {key[1]} calls {target}, which is not a "
                    "@kernel function: the call boxes its arguments and "
                    "forces object mode — register the helper with "
                    "@kernel or inline it",
                )

    @staticmethod
    def _calls_kernel(
        model: "ProjectModel", caller: "FunctionKey", ref: str
    ) -> bool:
        candidates = model.resolve_ref(caller[0], ref)
        if not candidates:
            # Outside the modelled universe (e.g. a module the corpus
            # does not cover): stay conservative, no diagnostic.
            return True
        return any(
            model.functions[candidate].is_kernel for candidate in candidates
        )
