"""Process-boundary safety in the sweep runner.

Shards cross the process boundary as plain dicts and come back as JSON
payloads; worker functions are resolved *by name* inside the worker
(``repro.runner.workers``), never pickled.  Two rules keep that
contract honest: nothing closure-shaped goes to the executor, and task
payloads stay JSON-serialisable — the payload is simultaneously the
cache key, the subprocess message, and the journal record, so a value
``json.dumps`` cannot round-trip corrupts all three.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["ClosureToExecutor", "NonJsonPayload"]

_SCOPE = ("repro.runner",)

#: Executor methods that ship their callable argument to another process.
_SHIP_METHODS = frozenset({"submit", "map", "apply", "apply_async"})


@register
class ClosureToExecutor(Rule):
    """PROC001: no lambdas/nested functions handed to the process pool."""

    code = "PROC001"
    name = "closure-to-executor"
    rationale = (
        "Lambdas and nested functions cannot be pickled to a worker "
        "process; workers are resolved by module:function name so every "
        "start method works."
    )
    scope = _SCOPE

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._visit(ctx, ctx.tree, frozenset())

    def _visit(
        self, ctx: FileContext, node: ast.AST, nested: frozenset[str]
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Call) and _ships_callable(node):
            for value in [*node.args, *(kw.value for kw in node.keywords)]:
                if isinstance(value, ast.Lambda):
                    yield self.diagnostic(
                        ctx,
                        value,
                        "lambda passed to a process-pool call; pass a "
                        "module-level function (resolved by name) instead",
                    )
                elif isinstance(value, ast.Name) and value.id in nested:
                    yield self.diagnostic(
                        ctx,
                        value,
                        f"nested function {value.id!r} passed to a "
                        "process-pool call; closures cannot cross the "
                        "process boundary",
                    )
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                inner = nested | {
                    stmt.name
                    for stmt in child.body
                    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                yield from self._visit(ctx, child, inner)
            else:
                yield from self._visit(ctx, child, nested)


def _ships_callable(node: ast.Call) -> bool:
    return (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _SHIP_METHODS
    )


@register
class NonJsonPayload(Rule):
    """PROC002: task payloads hold only JSON-serialisable values."""

    code = "PROC002"
    name = "non-json-payload"
    rationale = (
        "A task's payload is its cache key, its subprocess message, and "
        "its journal record at once; a non-JSON value silently corrupts "
        "caching and replay."
    )
    scope = _SCOPE

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            for payload in _payload_expressions(node):
                for offender, label in _non_json_nodes(payload):
                    yield self.diagnostic(
                        ctx,
                        offender,
                        f"{label} inside a task payload; payloads must "
                        "round-trip through json.dumps (the cache key and "
                        "the subprocess message)",
                    )


def _payload_expressions(node: ast.Call) -> Iterator[ast.expr]:
    """Expressions that become a ``Task`` payload in this call."""
    is_task = (
        isinstance(node.func, ast.Name)
        and node.func.id == "Task"
        or isinstance(node.func, ast.Attribute)
        and node.func.attr == "Task"
    )
    for keyword in node.keywords:
        if keyword.arg == "payload":
            yield keyword.value
    if is_task and len(node.args) >= 3:
        yield node.args[2]


def _non_json_nodes(payload: ast.expr) -> Iterator[tuple[ast.expr, str]]:
    for node in ast.walk(payload):
        if isinstance(node, ast.Lambda):
            yield node, "lambda"
        elif isinstance(node, (ast.Set, ast.SetComp)):
            yield node, "set"
        elif isinstance(node, ast.Constant) and isinstance(node.value, bytes):
            yield node, "bytes literal"
        elif isinstance(node, ast.Constant) and isinstance(node.value, complex):
            yield node, "complex literal"
