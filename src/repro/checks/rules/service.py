"""Event-loop discipline in the recovery service (SVC001).

:mod:`repro.service` is a single-threaded asyncio control plane: every
coroutine shares one event loop with the probe-ingestion drain, the
boundary scan, and the failure-group resolver.  One blocking call —
``time.sleep``, synchronous file or socket I/O, a subprocess wait —
stalls *all* of them at once: heartbeats pile into the bounded queues,
probe boundaries are missed, and decision latency (the SLO the service
exists to bound) spikes by the length of the stall.  Waiting must go
through the service clock (``await clock.sleep(...)``) and I/O through
asyncio streams.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..cfg import blocking_call_reason
from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["BlockingCallInCoroutine"]


@register
class BlockingCallInCoroutine(Rule):
    """SVC001: no blocking calls inside ``repro.service`` coroutines."""

    code = "SVC001"
    name = "blocking-call-in-coroutine"
    rationale = (
        "The recovery service is one shared event loop; a blocking call "
        "in any coroutine stalls probe ingestion, boundary scans, and "
        "failover decisions together, breaking the decision-latency SLO. "
        "Wait via the service clock and do I/O through asyncio."
    )
    scope = ("repro.service",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        reported: set[int] = set()
        for outer in ast.walk(ctx.tree):
            if not isinstance(outer, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call) or id(node) in reported:
                    continue
                offence = self._blocking_call(ctx, node)
                if offence is not None:
                    reported.add(id(node))
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"{offence} inside a repro.service coroutine blocks "
                        "the shared event loop; await the service clock "
                        "(clock.sleep) or use asyncio I/O instead",
                    )

    @staticmethod
    def _blocking_call(ctx: FileContext, node: ast.Call) -> str | None:
        return blocking_call_reason(ctx.resolve, node)
