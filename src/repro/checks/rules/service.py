"""Event-loop and federation discipline in the recovery service.

SVC001: :mod:`repro.service` is a single-threaded asyncio control
plane: every coroutine shares one event loop with the probe-ingestion
drain, the boundary scan, and the failure-group resolver.  One blocking
call — ``time.sleep``, synchronous file or socket I/O, a subprocess
wait — stalls *all* of them at once: heartbeats pile into the bounded
queues, probe boundaries are missed, and decision latency (the SLO the
service exists to bound) spikes by the length of the stall.  Waiting
must go through the service clock (``await clock.sleep(...)``) and I/O
through asyncio streams.

SVC014: decision commits and :class:`ControllerCluster` epoch/primary
mutation inside ``repro.service`` must flow through the sanctioned
seams — the resolver's write-ahead-logged commit path and
:class:`~repro.service.federation.ServiceFederation` — or the crash
guarantees fall apart silently: a commit outside the resolver skips
the WAL (lost on takeover) and the fence check (a deposed primary's
late write lands), and a direct cluster mutation skips the election
listener (no takeover replay) and the crash audit trail.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..cfg import blocking_call_reason
from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["BlockingCallInCoroutine", "UnsanctionedFederationMutation"]


@register
class BlockingCallInCoroutine(Rule):
    """SVC001: no blocking calls inside ``repro.service`` coroutines."""

    code = "SVC001"
    name = "blocking-call-in-coroutine"
    rationale = (
        "The recovery service is one shared event loop; a blocking call "
        "in any coroutine stalls probe ingestion, boundary scans, and "
        "failover decisions together, breaking the decision-latency SLO. "
        "Wait via the service clock and do I/O through asyncio."
    )
    scope = ("repro.service",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        reported: set[int] = set()
        for outer in ast.walk(ctx.tree):
            if not isinstance(outer, ast.AsyncFunctionDef):
                continue
            for node in ast.walk(outer):
                if not isinstance(node, ast.Call) or id(node) in reported:
                    continue
                offence = self._blocking_call(ctx, node)
                if offence is not None:
                    reported.add(id(node))
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"{offence} inside a repro.service coroutine blocks "
                        "the shared event loop; await the service clock "
                        "(clock.sleep) or use asyncio I/O instead",
                    )

    @staticmethod
    def _blocking_call(ctx: FileContext, node: ast.Call) -> str | None:
        return blocking_call_reason(ctx.resolve, node)


#: Controller commit entry points; inside repro.service they are only
#: sanctioned in the resolver, whose commit path write-ahead logs and
#: fence-checks every call.
_COMMIT_CALLS = frozenset({"handle_node_failure", "handle_link_failure"})

#: The module whose commit path is the sanctioned one.
_COMMIT_MODULE = "repro.service.resolver"

#: ControllerCluster election/replica mutators; inside repro.service
#: they are only sanctioned behind ServiceFederation, which audits the
#: crash and notifies the takeover listener.
_CLUSTER_MUTATIONS = frozenset(
    {"fail_primary", "fail_replica", "restore_replica"}
)

#: Cluster state that must never be assigned directly.
_FENCED_ATTRS = frozenset({"epoch", "elections", "replicas", "_primary"})

#: The module that owns the sanctioned federation surface.
_FEDERATION_MODULE = "repro.service.federation"

#: Receiver-name stems that mark a cluster-shaped object.
_CLUSTER_STEMS = ("cluster",)


@register
class UnsanctionedFederationMutation(Rule):
    """SVC014: commits and cluster mutation outside the WAL/federation API."""

    code = "SVC014"
    name = "unsanctioned-federation-mutation"
    rationale = (
        "A controller commit outside the resolver skips the write-ahead "
        "log and the epoch fence (decisions lost on takeover, deposed "
        "primaries landing late writes); a direct cluster mutation skips "
        "ServiceFederation's election listener and crash audit.  Route "
        "commits through the resolver and cluster changes through "
        "ServiceFederation."
    )
    scope = ("repro.service",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        module = ctx.module or ""
        if not module and ctx.category is not None:
            # A repository file outside the repro package (benchmarks,
            # examples, tests) is call-driven by design — controller
            # commits there are the library API, not service code.
            # Only true unknowns (lint fixtures) stay strict.
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr in _COMMIT_CALLS and module != _COMMIT_MODULE:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"controller commit .{func.attr}() outside the "
                        "resolver's WAL-logged, fence-checked path; submit "
                        "a PendingFailure to FailureGroupResolver instead",
                    )
                elif (
                    func.attr in _CLUSTER_MUTATIONS
                    and module != _FEDERATION_MODULE
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"cluster mutation .{func.attr}() outside "
                        "ServiceFederation; use federation.crash_primary() "
                        "/ federation.restore() so elections are audited "
                        "and takeover replays the WAL",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _FENCED_ATTRS
                        and _looks_like_cluster(target.value)
                        and module != _FEDERATION_MODULE
                    ):
                        yield self.diagnostic(
                            ctx,
                            target,
                            f"direct write to cluster.{target.attr} bypasses "
                            "the election seam; fencing epochs and primaries "
                            "only change inside ControllerCluster._elect()",
                        )


def _looks_like_cluster(receiver: ast.expr) -> bool:
    """Whether ``receiver`` is plausibly a ControllerCluster."""
    if isinstance(receiver, ast.Subscript):
        return _looks_like_cluster(receiver.value)
    if isinstance(receiver, ast.Attribute):
        name = receiver.attr
    elif isinstance(receiver, ast.Name):
        name = receiver.id
    else:
        return False
    lowered = name.lower()
    return any(stem in lowered for stem in _CLUSTER_STEMS)
