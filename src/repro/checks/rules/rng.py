"""RNG discipline: every random draw must flow from an explicit seed.

The sweep runner re-executes arbitrary slices of an experiment in
arbitrary worker processes and must land on bit-identical results
(``docs/runner.md``).  That only holds when :mod:`repro.rng` is the
single place randomness enters the system — a module-global generator
(stdlib ``random.*`` or legacy ``numpy.random.*``) is invisible to the
runner's seed derivation and breaks the parallel == serial guarantee
silently.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["ModuleGlobalRandom", "UnseededPublicApi"]

#: Stdlib ``random`` module-level functions that touch the hidden
#: global generator (``random.Random``/``random.SystemRandom`` are
#: classes and stay legal — instantiating one is explicit seeding).
_STDLIB_GLOBAL_FNS = frozenset(
    {
        "seed", "random", "uniform", "randint", "randrange", "getrandbits",
        "randbytes", "choice", "choices", "shuffle", "sample", "triangular",
        "betavariate", "binomialvariate", "expovariate", "gammavariate",
        "gauss", "lognormvariate", "normalvariate", "vonmisesvariate",
        "paretovariate", "weibullvariate",
    }
)

#: Call names that constitute "drawing randomness" for RNG002.
_DRAW_TAILS = frozenset({"ensure_rng", "default_rng"})

#: Parameter names that count as explicit seed threading.
_SEED_PARAM_EXACT = frozenset({"rng", "seed"})
_SEED_PARAM_SUFFIXES = ("_rng", "_seed")


@register
class ModuleGlobalRandom(Rule):
    """RNG001: no module-global ``random.*`` / ``np.random.*`` calls."""

    code = "RNG001"
    name = "module-global-random"
    rationale = (
        "Module-global generators are invisible to repro.rng's seed "
        "derivation, so parallel sweeps would stop being bit-identical "
        "to serial runs."
    )
    exempt = ("repro.rng",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved is None:
                continue
            message = _banned_call_message(resolved)
            if message is not None:
                yield self.diagnostic(ctx, node, message)


def _banned_call_message(resolved: str) -> str | None:
    module, _, fn = resolved.rpartition(".")
    if module == "random" and fn in _STDLIB_GLOBAL_FNS:
        return (
            f"call to module-global random.{fn}(); thread an explicit "
            "stream through repro.rng.ensure_rng instead"
        )
    if module in ("numpy.random", "np.random"):
        if fn == "default_rng":
            return (
                "direct numpy.random.default_rng(); use "
                "repro.rng.ensure_rng so every seed-like type stays "
                "interoperable"
            )
        if fn[:1].islower():
            return (
                f"call to legacy module-global numpy.random.{fn}(); use a "
                "Generator from repro.rng.ensure_rng"
            )
    return None


@register
class UnseededPublicApi(Rule):
    """RNG002: public functions that draw randomness take ``rng``/``seed``."""

    code = "RNG002"
    name = "unseeded-public-api"
    rationale = (
        "A public entry point that draws randomness without accepting a "
        "seed cannot be replayed by the runner, cached by payload, or "
        "swept reproducibly."
    )
    exempt = ("repro.rng",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for fn in _public_functions(ctx.tree):
            if _accepts_seed(fn):
                continue
            for call in ast.walk(fn):
                if isinstance(call, ast.Call) and _is_draw(ctx, call):
                    if _threads_seed_state(call):
                        continue
                    yield self.diagnostic(
                        ctx,
                        call,
                        f"public function {fn.name!r} draws randomness but "
                        "declares no rng/seed parameter and threads no "
                        "seed-bearing state",
                    )


def _public_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    """Module-level functions and class methods with a public name."""
    containers: list[ast.Module | ast.ClassDef] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            containers.append(node)
    for container in containers:
        for stmt in container.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                dunder = stmt.name.startswith("__") and stmt.name.endswith("__")
                if dunder or not stmt.name.startswith("_"):
                    yield stmt


def _accepts_seed(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
    params = [
        *fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs,
    ]
    if fn.args.vararg is not None:
        params.append(fn.args.vararg)
    if fn.args.kwarg is not None:
        params.append(fn.args.kwarg)
    for param in params:
        name = param.arg
        if name in _SEED_PARAM_EXACT or name.endswith(_SEED_PARAM_SUFFIXES):
            return True
    return False


def _is_draw(ctx: FileContext, call: ast.Call) -> bool:
    resolved = ctx.resolve(call.func)
    if resolved is None:
        # Unresolved attribute draws like ``self._rng`` are method calls
        # on an already-threaded generator: not a new entry of randomness.
        return False
    if resolved == "random.Random":
        return True
    return resolved.rpartition(".")[2] in _DRAW_TAILS


def _threads_seed_state(call: ast.Call) -> bool:
    """True when the draw's arguments carry seed/rng-named state.

    ``ensure_rng(self.cfg.seed)`` inside a method is legitimate: the
    seed was threaded in through the constructor and stored — the draw
    is still a pure function of configuration.
    """
    values = list(call.args) + [kw.value for kw in call.keywords]
    for value in values:
        for node in ast.walk(value):
            text: str | None = None
            if isinstance(node, ast.Name):
                text = node.id
            elif isinstance(node, ast.Attribute):
                text = node.attr
            if text is not None and ("seed" in text or "rng" in text):
                return True
    return False
