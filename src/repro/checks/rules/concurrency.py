"""Interleaving discipline in the recovery control plane (SVC010–SVC013).

:mod:`repro.service` recovers failures on one shared event loop, and its
correctness claims — queue-counter conservation, one commit per failure
group, decisions identical under replay — are *interleaving* invariants:
they hold only if no coroutine observes another's half-finished update.
asyncio makes the danger zone easy to name (code is atomic between
awaits), and these rules police exactly that zone, over the
whole-program model so the evidence includes who actually spawns whom:

* **SVC010** — a shared variable is read, the coroutine suspends at an
  await outside any lock region, and the *pre-await* value feeds a later
  write while some concurrent coroutine also writes that variable: the
  classic lost update, the static twin of the conservation law the
  backpressure tests check dynamically.
* **SVC011** — a task is spawned and its handle immediately discarded:
  nothing will ever observe its exception, so a crashed ingest loop or
  resolver turns into silent probe loss (asyncio only logs the error at
  garbage-collection time, far from the cause).
* **SVC012** — a lock is held across a blocking call or an unbounded
  await, or manually acquired without a guaranteed release: every other
  waiter inherits the stall, turning one slow coroutine into a
  control-plane-wide outage.
* **SVC013** — a coroutine mutates module-level state: invisible to the
  replay harness's fresh-service-per-run isolation, and shared across
  *every* service instance in the process.

All four run over :class:`~repro.checks.concurrency.InterferenceEngine`
facts extracted per file (and therefore cached); the rules themselves
are pure joins, so warm lint pays nothing for them.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..concurrency import InterferenceEngine
from ..diagnostics import Diagnostic
from ..registry import ProjectRule, register_project

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..callgraph import FunctionSummary
    from ..project import FunctionKey, ProjectModel

__all__ = [
    "AwaitInterference",
    "FireAndForgetTask",
    "LockDiscipline",
    "CoroutineGlobalMutation",
]

#: The async subsystems these rules police.  The checks engine and the
#: runner are synchronous; applying interleaving rules there would only
#: manufacture noise.
_ASYNC_SCOPE = ("repro.service", "repro.chaos")


def _async_items(
    model: "ProjectModel",
) -> Iterator[tuple["FunctionKey", "FunctionSummary"]]:
    for key in sorted(model.functions):
        fn = model.functions[key]
        if fn.concurrency is not None:
            yield key, fn


def _location(
    model: "ProjectModel", key: "FunctionKey", lineno: int, col: int
) -> tuple[str, int, int]:
    return (model.modules[key[0]].path, lineno, col)


@register_project
class AwaitInterference(ProjectRule):
    """SVC010: read → await → write of shared state, outside a lock,
    with a concurrent writer."""

    code = "SVC010"
    name = "await-interference"
    rationale = (
        "A coroutine that reads shared state, suspends at an await, and "
        "then writes a value derived from the stale read loses every "
        "update a concurrent task made in between — the conservation "
        "laws the recovery service is built on break exactly here. "
        "Re-read after the await, or hold a lock across the window."
    )
    scope = _ASYNC_SCOPE

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        engine = InterferenceEngine(model)
        for key, fn in _async_items(model):
            summary = fn.concurrency
            assert summary is not None
            for stale in summary.stale_writes:
                witness = engine.interference_witness(key, stale.var)
                if witness is None:
                    continue
                path, line, col = _location(
                    model, key, stale.lineno, stale.col
                )
                who = (
                    "another instance of itself"
                    if witness == key
                    else f"{witness[0]}.{witness[1]}"
                )
                yield self.diagnostic(
                    path,
                    line,
                    col,
                    f"write of {stale.var} in {key[1]} may use a value "
                    f"read on line {stale.read_line}, before an await "
                    f"outside any lock region; {who} also writes "
                    f"{stale.var} and can interleave at that await — "
                    "re-read after awaiting or guard both with one lock",
                )


@register_project
class FireAndForgetTask(ProjectRule):
    """SVC011: spawned task whose handle (and exception) is discarded."""

    code = "SVC011"
    name = "fire-and-forget-task"
    rationale = (
        "A task spawned without keeping its handle is never awaited, "
        "cancelled, or checked: if it crashes, asyncio reports the "
        "exception only when the task is garbage-collected — the "
        "service keeps serving with a dead ingest loop or resolver. "
        "Keep the handle and await/cancel it on shutdown, or use a "
        "supervised TaskGroup."
    )
    scope = _ASYNC_SCOPE

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        for key, fn in _async_items(model):
            summary = fn.concurrency
            assert summary is not None
            for site in summary.spawns:
                if not site.discarded:
                    continue
                path, line, col = _location(
                    model, key, site.lineno, site.col
                )
                yield self.diagnostic(
                    path,
                    line,
                    col,
                    f"task spawned via {site.via} in {key[1]} is "
                    "fire-and-forget: no handle is kept, so its "
                    "exceptions are never observed — store the task and "
                    "await or cancel it during shutdown",
                )


@register_project
class LockDiscipline(ProjectRule):
    """SVC012: lock held across blocking/unbounded waits, or acquired
    without a guaranteed release."""

    code = "SVC012"
    name = "lock-discipline"
    rationale = (
        "A lock held across a blocking call or an unbounded await "
        "extends one coroutine's stall to every waiter; a manual "
        "acquire without a finally-guarded release deadlocks them "
        "outright on the first exception. Critical sections must be "
        "short, bounded, and exception-safe."
    )
    scope = _ASYNC_SCOPE

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        for key, fn in _async_items(model):
            summary = fn.concurrency
            assert summary is not None
            for violation in summary.lock_violations:
                path, line, col = _location(
                    model, key, violation.lineno, violation.col
                )
                if violation.kind == "unbounded-await":
                    message = (
                        f"await of {violation.what} in {key[1]} while "
                        f"holding {violation.lock} can park forever with "
                        "the lock held — await it outside the critical "
                        "section or bound it with asyncio.wait_for"
                    )
                elif violation.kind == "blocking-call":
                    message = (
                        f"{violation.what} in {key[1]} while holding "
                        f"{violation.lock} stalls the event loop with "
                        "the lock held — every waiter inherits the stall"
                    )
                else:
                    message = (
                        f"{violation.lock}.acquire() in {key[1]} has "
                        f"{violation.what}: an exception before release "
                        "deadlocks every other waiter — use 'async with' "
                        "or release in a finally block"
                    )
                yield self.diagnostic(path, line, col, message)


@register_project
class CoroutineGlobalMutation(ProjectRule):
    """SVC013: coroutine-side mutation of module-level state."""

    code = "SVC013"
    name = "coroutine-global-mutation"
    rationale = (
        "Module-level state mutated from a coroutine is shared by every "
        "service instance in the process and survives across replay "
        "runs, silently coupling tests, replays, and servers that are "
        "supposed to be isolated. Keep mutable state on the service "
        "object, injected at construction."
    )
    scope = _ASYNC_SCOPE

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        for key, fn in _async_items(model):
            summary = fn.concurrency
            assert summary is not None
            for mutation in summary.global_mutations:
                path, line, col = _location(
                    model, key, mutation.lineno, mutation.col
                )
                yield self.diagnostic(
                    path,
                    line,
                    col,
                    f"coroutine {key[1]} mutates module-level "
                    f"{mutation.name} ({mutation.how}): module state is "
                    "process-wide and outlives the service — move it "
                    "onto the service object or pass it explicitly",
                )
