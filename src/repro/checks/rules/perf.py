"""Hot-path performance invariants in the fluid engine.

The engine's event loop is *incremental* (``docs/simulator.md``): after
an event, rate recomputation is confined to the dirty conflict-graph
components, completions come off a projected-finish heap, and flow
residuals are settled lazily.  The cheapest way to lose all of that is
a helper that quietly sweeps ``self.active`` on every event — exactly
the O(active)-per-event pattern the incremental overhaul removed.  This
rule bans such sweeps inside :class:`FluidSimulation`, except in the
small audited set of helpers whose *job* is the full view.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["FullActiveSweep"]

#: FluidSimulation helpers allowed to walk every active flow: re-pathing
#: after a topology change, the from-scratch oracle allocator, the
#: monitor notification (monitors are owed the full rate map), and final
#: result assembly.  None of them runs on the per-event hot path.
_SANCTIONED = frozenset(
    {"_repath_flows", "_reallocate_oracle", "_notify_monitor", "_build_result"}
)


@register
class FullActiveSweep(Rule):
    """PERF001: no full ``self.active`` sweeps in engine hot paths."""

    code = "PERF001"
    name = "full-active-sweep"
    rationale = (
        "The fluid engine recomputes rates only for dirty conflict "
        "components; a loop over self.active inside FluidSimulation "
        "reintroduces the O(active)-per-event scans the incremental "
        "allocator removed, silently regressing trace-scale replays."
    )
    scope = ("repro.simulation",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and node.name == "FluidSimulation"):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in _SANCTIONED:
                    continue
                yield from self._sweeps_in(ctx, item)

    def _sweeps_in(
        self, ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(func):
            target: ast.expr | None = None
            if isinstance(node, ast.For):
                target = node.iter
            elif isinstance(node, ast.comprehension):
                target = node.iter
            if target is not None and _mentions_self_active(target):
                yield self.diagnostic(
                    ctx,
                    target,
                    f"iteration over self.active in FluidSimulation."
                    f"{func.name}(); per-event work must stay within the "
                    "dirty conflict components (sanctioned full sweeps: "
                    f"{', '.join(sorted(_SANCTIONED))})",
                )


def _mentions_self_active(node: ast.expr) -> bool:
    """True if ``self.active`` appears anywhere in the expression — this
    also catches wrapped forms like ``sorted(self.active)`` or
    ``self.active.items()``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "active"
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            return True
    return False
