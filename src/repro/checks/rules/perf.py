"""Hot-path performance invariants in the fluid engine.

The engine's event loop is *incremental* (``docs/simulator.md``): after
an event, rate recomputation is confined to the dirty conflict-graph
components, completions come off a projected-finish heap, and flow
residuals are settled lazily.  The cheapest way to lose all of that is
a helper that quietly sweeps ``self.active`` on every event — exactly
the O(active)-per-event pattern the incremental overhaul removed.  This
rule bans such sweeps inside :class:`FluidSimulation`, except in the
small audited set of helpers whose *job* is the full view.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["FullActiveSweep", "ColumnarPythonLoop"]

#: FluidSimulation helpers allowed to walk every active flow: re-pathing
#: after a topology change, the from-scratch oracle allocator, the
#: vectorized backend's table rebuild (same trigger as re-pathing), the
#: monitor notification (monitors are owed the full rate map), and final
#: result assembly.  None of them runs on the per-event hot path.
_SANCTIONED = frozenset(
    {
        "_repath_flows",
        "_reallocate_oracle",
        "_rebuild_table",
        "_notify_monitor",
        "_build_result",
    }
)


@register
class FullActiveSweep(Rule):
    """PERF001: no full ``self.active`` sweeps in engine hot paths."""

    code = "PERF001"
    name = "full-active-sweep"
    rationale = (
        "The fluid engine recomputes rates only for dirty conflict "
        "components; a loop over self.active inside FluidSimulation "
        "reintroduces the O(active)-per-event scans the incremental "
        "allocator removed, silently regressing trace-scale replays."
    )
    scope = ("repro.simulation",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.ClassDef) and node.name == "FluidSimulation"):
                continue
            for item in node.body:
                if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                if item.name in _SANCTIONED:
                    continue
                yield from self._sweeps_in(ctx, item)

    def _sweeps_in(
        self, ctx: FileContext, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(func):
            target: ast.expr | None = None
            if isinstance(node, ast.For):
                target = node.iter
            elif isinstance(node, ast.comprehension):
                target = node.iter
            if target is not None and _mentions_self_active(target):
                yield self.diagnostic(
                    ctx,
                    target,
                    f"iteration over self.active in FluidSimulation."
                    f"{func.name}(); per-event work must stay within the "
                    "dirty conflict components (sanctioned full sweeps: "
                    f"{', '.join(sorted(_SANCTIONED))})",
                )


#: Columnar helpers allowed per-element Python loops: the per-event
#: patch helpers (walking one event's handful of path ids beats any
#: whole-array formulation) and the packer that builds a matrix from
#: Python tuples in the first place.
_COLUMNAR_SANCTIONED = frozenset({"append", "discard", "rebuild", "pack_paths"})


@register
class ColumnarPythonLoop(Rule):
    """PERF002: no per-element Python loops in the columnar core."""

    code = "PERF002"
    name = "columnar-python-loop"
    rationale = (
        "The vectorized backend's whole point is that per-pass work is "
        "whole-array numpy calls; a Python loop over rows or segments "
        "inside repro.simulation.columnar reintroduces per-element "
        "interpreter dispatch on the hottest path in the engine."
    )
    scope = ("repro.simulation.columnar",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.module is None:
            # Unlike class-anchored rules, this one has no structural
            # anchor — it bans plain loops — so it must never leak onto
            # files whose module the harness could not resolve.
            return
        for func_name, iter_expr in _loops_by_function(ctx.tree):
            if func_name in _COLUMNAR_SANCTIONED:
                continue
            if _is_range_call(iter_expr):
                # Loops over range() are bounded by a shape dimension
                # (the column unroll in the _column_min kernel), not by
                # the number of flows; whole-array calls run inside them.
                continue
            yield self.diagnostic(
                ctx,
                iter_expr,
                f"Python loop in {func_name}() iterates per element over "
                "columnar data; express it as whole-array numpy work "
                "(sanctioned patch helpers: "
                f"{', '.join(sorted(_COLUMNAR_SANCTIONED))})",
            )


def _loops_by_function(tree: ast.AST) -> list[tuple[str, ast.expr]]:
    """Every ``for``/comprehension iterable, tagged with the name of the
    innermost enclosing function (``"<module>"`` at top level)."""
    found: list[tuple[str, ast.expr]] = []

    def visit(node: ast.AST, func: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                visit(child, child.name)
                continue
            if isinstance(child, (ast.For, ast.AsyncFor)):
                found.append((func, child.iter))
            elif isinstance(
                child, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                found.extend((func, comp.iter) for comp in child.generators)
            visit(child, func)

    visit(tree, "<module>")
    return found


def _is_range_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "range"
    )


def _mentions_self_active(node: ast.expr) -> bool:
    """True if ``self.active`` appears anywhere in the expression — this
    also catches wrapped forms like ``sorted(self.active)`` or
    ``self.active.items()``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and sub.attr == "active"
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            return True
    return False
