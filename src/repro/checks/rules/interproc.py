"""Whole-program rules: what no single file can prove.

Every rule here runs once over the linked
:class:`~repro.checks.project.ProjectModel` instead of per file.  They
are the offline counterpart of the paper's stance on failure handling:
the properties that make a parallel sweep trustworthy — seeded
entropy, process-safe payloads, controller-mediated circuit mutation —
are verified before anything executes, across module boundaries where
the per-file rules are blind.

All five rules confine themselves to modules under the ``repro``
package: lint fixtures and scratch files (``module=None``) never enter
the model's module table, so project rules cannot fire on them.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import TYPE_CHECKING

from ..diagnostics import Diagnostic
from ..registry import ProjectRule, register_project

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Typing-only by necessity, not preference: importing the rule
    # modules is what registers them, so ``callgraph`` (which reuses
    # their heuristics) is still mid-initialisation whenever this
    # module loads — a runtime import here would be a cycle.
    from ..callgraph import CallSite
    from ..project import FunctionKey, ProjectModel

__all__ = [
    "TransitiveUnseededEntropy",
    "PayloadReachesNonJson",
    "HelperCircuitMutation",
    "ImportCycle",
    "DeadExport",
]

#: Modules the circuit-switch discipline designates as the control plane.
_CONTROL_PLANE = "repro.core"


def _in_control_plane(module: str) -> bool:
    return module == _CONTROL_PLANE or module.startswith(
        _CONTROL_PLANE + "."
    )


@register_project
class TransitiveUnseededEntropy(ProjectRule):
    """RNG010 — a public function reaches unseeded entropy via callees.

    RNG002 already flags a public function that *itself* draws without
    a seed parameter; this rule follows the call graph, so a draw
    hidden two helpers deep — possibly in another module — still
    surfaces at the public entry point that makes it reachable.  The
    fix is the same as for RNG002: accept an ``rng``/``seed`` parameter
    and thread it (:func:`repro.rng.ensure_rng` /
    :func:`repro.rng.derive_seed`).
    """

    code = "RNG010"
    name = "transitive-unseeded-entropy"
    rationale = (
        "a public API that transitively constructs fresh entropy cannot "
        "reproduce bit-identically across sweep shards"
    )
    exempt = ("repro.rng",)

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        tainted = model.seed_tainted()
        for key in sorted(tainted):
            if tainted[key] == key:
                # Direct draw — per-file territory (RNG001/RNG002).
                continue
            fn = model.functions[key]
            if not fn.is_public:
                continue
            path, line, col = model.location_of(key)
            chain = _witness_chain(tainted, key)
            yield self.diagnostic(
                path,
                line,
                col,
                f"public function '{key[1]}' reaches an unseeded entropy "
                f"draw through {_render_chain(chain)}; accept an rng/seed "
                "parameter and thread it via repro.rng.ensure_rng",
            )


def _witness_chain(
    tainted: "dict[FunctionKey, FunctionKey]", key: "FunctionKey"
) -> "list[FunctionKey]":
    chain: list[FunctionKey] = []
    current = key
    while len(chain) < 6:
        witness = tainted[current]
        if witness == current:
            break
        chain.append(witness)
        current = witness
    return chain


def _render_chain(chain: "list[FunctionKey]") -> str:
    return " -> ".join(f"{module}.{qualname}" for module, qualname in chain)


@register_project
class PayloadReachesNonJson(ProjectRule):
    """PROC010 — a Task payload reaches a non-JSON value through calls.

    PROC002 inspects the payload expression literally; this rule chases
    every call inside it (``plan.payload(config)``) into the functions
    that build the value, across modules, and flags any path that can
    return a lambda, set, bytes, or complex — the constructs a spawned
    worker cannot receive.
    """

    code = "PROC010"
    name = "payload-reaches-non-json"
    rationale = (
        "worker payloads cross a process boundary as JSON; a non-"
        "serialisable value built behind a helper fails at sweep time"
    )

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        for module in sorted(model.modules):
            summary = model.modules[module]
            for fn in summary.functions:
                seen: set[tuple[int, int, str]] = set()
                for site in fn.payload_sites:
                    for ref in site.call_refs:
                        for callee in model.resolve_ref(
                            module, ref, methods=True
                        ):
                            witness = model.nonjson_witness(callee)
                            if witness is None:
                                continue
                            origin, label = witness
                            marker = (site.lineno, site.col, label)
                            if marker in seen:
                                continue
                            seen.add(marker)
                            yield self.diagnostic(
                                summary.path,
                                site.lineno,
                                site.col,
                                "task payload can reach a non-JSON value "
                                f"({label}) returned by "
                                f"{origin[0]}.{origin[1]}(); payloads must "
                                "stay JSON-serialisable end to end",
                            )


@register_project
class HelperCircuitMutation(ProjectRule):
    """CHS010 — circuit-switch mutation laundered through a helper.

    CHS001 flags a direct ``cs.connect(...)`` outside :mod:`repro.core`;
    this rule extends the discipline one level of indirection deep, in
    both directions it can be evaded:

    * passing circuit-switch state into a helper (outside the control
      plane) whose body mutates that parameter — the helper's own
      parameter name is usually too generic for CHS001 to see;
    * calling a *private* ``repro.core`` function that mutates circuits
      from outside the control plane — private entry points are not
      part of the sanctioned controller API.
    """

    code = "CHS010"
    name = "helper-circuit-mutation"
    rationale = (
        "circuit-switch state must only change through the repro.core "
        "controller; helper indirection bypasses failover bookkeeping"
    )
    exempt = (_CONTROL_PLANE,)

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        for module in sorted(model.modules):
            if _in_control_plane(module):
                continue
            summary = model.modules[module]
            for fn in summary.functions:
                for call in fn.calls:
                    yield from self._check_call(model, module, summary.path, call)

    def _check_call(
        self,
        model: "ProjectModel",
        module: str,
        path: str,
        call: "CallSite",
    ) -> Iterator[Diagnostic]:
        callees = model.resolve_ref(module, call.ref)
        for callee_key in callees:
            callee = model.functions[callee_key]
            callee_module = callee_key[0]
            if _in_control_plane(callee_module):
                if callee.name.startswith("_") and callee.mutates_circuit:
                    yield self.diagnostic(
                        path,
                        call.lineno,
                        call.col,
                        f"calls private control-plane function "
                        f"{callee_module}.{callee.qualname}(), which "
                        "mutates circuit-switch state; use the public "
                        "controller API",
                    )
                continue
            if callee.cls is not None:
                continue
            for position in call.cs_arg_positions:
                if position >= len(callee.params):
                    continue
                param = callee.params[position]
                if param in callee.mutated_params:
                    yield self.diagnostic(
                        path,
                        call.lineno,
                        call.col,
                        "passes circuit-switch state into "
                        f"{callee_module}.{callee.qualname}(), which "
                        f"mutates parameter '{param}'; circuit state may "
                        "only change through the repro.core controller",
                    )


@register_project
class ImportCycle(ProjectRule):
    """IMP001 — module-level import cycle inside the repro package.

    Cycles are judged over *module-level* imports only: a deferred
    import inside a function is the sanctioned cycle-breaker and never
    counts.  Each strongly-connected component is reported once, at the
    first participating import of its alphabetically-first member.
    """

    code = "IMP001"
    name = "import-cycle"
    rationale = (
        "an import cycle makes module initialisation order-dependent "
        "and breaks partial imports in spawned workers"
    )

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        for cycle in model.import_cycles():
            anchor = cycle[0]
            summary = model.modules[anchor]
            members = set(cycle)
            line = 1
            for record in summary.imports:
                target = model.known_module(record.target)
                if target is None and record.fallback:
                    target = model.known_module(record.fallback)
                if target in members:
                    line = record.lineno
                    break
            rendered = " -> ".join([*cycle, anchor])
            yield self.diagnostic(
                summary.path,
                line,
                1,
                f"module-level import cycle: {rendered}; break it with a "
                "deferred (function-level) import",
            )


@register_project
class DeadExport(ProjectRule):
    """DEAD001 — exported public API nothing in the repository reaches.

    An ``__all__`` entry is dead when no *other* file in the reference
    corpus (``src``/``tests``/``examples``/``benchmarks``) mentions its
    name — by identifier, attribute, import, or by-name string
    reference (the runner resolves workers from strings).  Two
    liveness escapes are built in: classes that register themselves via
    a ``@register``-style decorator, and package ``__init__`` re-export
    surfaces.  Separately, a module under ``repro.checks.rules`` that
    the rules package never imports is dead wholesale — its rules are
    silently unregistered.
    """

    code = "DEAD001"
    name = "dead-export"
    rationale = (
        "an exported-but-unreachable name is untested surface area; "
        "dead rule modules silently drop their checks"
    )

    _RULES_PACKAGE = "repro.checks.rules"

    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        for module in sorted(model.modules):
            summary = model.modules[module]
            for name, lineno in summary.exports:
                if name in summary.self_registering:
                    continue
                if summary.is_package and name in summary.toplevel_bound:
                    continue
                if self._referenced_elsewhere(model, summary.path, name):
                    continue
                yield self.diagnostic(
                    summary.path,
                    lineno,
                    1,
                    f"'{name}' is exported from {module} but never "
                    "referenced anywhere else in the repository",
                )
        yield from self._unregistered_rule_modules(model)

    def _referenced_elsewhere(
        self, model: "ProjectModel", path: str, name: str
    ) -> bool:
        for other_path in model.summaries:
            if other_path == path:
                continue
            if name in model.summaries[other_path].refs:
                return True
        return False

    def _unregistered_rule_modules(
        self, model: "ProjectModel"
    ) -> Iterator[Diagnostic]:
        package = model.modules.get(self._RULES_PACKAGE)
        if package is None:
            return
        imported = set(model.import_graph.get(self._RULES_PACKAGE, ()))
        prefix = self._RULES_PACKAGE + "."
        for module in sorted(model.modules):
            if not module.startswith(prefix):
                continue
            if module in imported:
                continue
            summary = model.modules[module]
            yield self.diagnostic(
                summary.path,
                1,
                1,
                f"rule module {module} is never imported by "
                f"{self._RULES_PACKAGE}; its rules are never registered",
            )
