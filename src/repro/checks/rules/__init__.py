"""The shipped rule set, one module per invariant family.

* :mod:`.rng` — RNG discipline (RNG001, RNG002);
* :mod:`.determinism` — wall-clock/entropy and ordering hazards in
  simulation and experiment code (DET001, DET002, DET003);
* :mod:`.process` — process-boundary safety in the sweep runner
  (PROC001, PROC002);
* :mod:`.exceptions` — exception hygiene (EXC001, EXC002);
* :mod:`.controlplane` — control-plane discipline: circuit-switch
  mutations flow through the controller's retry/degradation wrapper
  (CHS001);
* :mod:`.perf` — engine hot-path discipline: no full active-set sweeps
  outside the sanctioned helpers (PERF001);
* :mod:`.service` — event-loop and federation discipline in the
  recovery service: no blocking calls inside ``repro.service``
  coroutines (SVC001); controller commits and cluster mutation flow
  through the WAL/federation seams (SVC014);
* :mod:`.concurrency` — interleaving discipline over the whole-program
  interference engine: await-interference on shared state (SVC010),
  fire-and-forget tasks (SVC011), lock discipline (SVC012), coroutine
  mutation of module globals (SVC013);
* :mod:`.interproc` — whole-program rules over the linked project
  model: transitive seed taint (RNG010), payload reachability
  (PROC010), helper circuit mutation (CHS010), import cycles (IMP001),
  dead exports (DEAD001);
* :mod:`.numeric` — numeric contracts of the ``@kernel`` water-fill
  core: silent dtype narrowing (NUM001), shape incompatibility
  (NUM002), aliasing hazards on in-place passes (NUM003), constructs
  outside the numba nopython subset (NUM004).

Importing a module registers its rules as a side effect of the
``@register`` / ``@register_project`` decorators.  A module listed in
this package but missing from the import below would silently drop its
rules — which is exactly what DEAD001 checks for.
"""

from __future__ import annotations

from . import (
    concurrency,
    controlplane,
    determinism,
    exceptions,
    interproc,
    numeric,
    perf,
    process,
    rng,
    service,
)

__all__ = [
    "concurrency",
    "controlplane",
    "determinism",
    "exceptions",
    "interproc",
    "numeric",
    "perf",
    "process",
    "rng",
    "service",
]
