"""Exception hygiene: failures either propagate or leave a record.

The runner's whole fault-tolerance story (retry, serial fallback,
journal) depends on failures being *visible* — a broad handler that
swallows an exception silently turns a reproducibility bug into a
wrong number in a figure.  Broad handlers are still sometimes right
(CLI boundary, GC safety nets); those carry an explicit
``# repro: noqa[EXC001]`` so every catch-all in the tree is an audited
decision, not an accident.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["SilentBroadExcept", "BareExcept"]

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


@register
class SilentBroadExcept(Rule):
    """EXC001: broad handlers must re-raise or write a journal record."""

    code = "EXC001"
    name = "silent-broad-except"
    rationale = (
        "A swallowed failure becomes a silently-wrong figure; broad "
        "handlers must re-raise, journal via .record(...), or carry an "
        "audited noqa."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_name(node.type)
            if broad is None or _handler_accounts_for_failure(node):
                continue
            yield self.diagnostic(
                ctx,
                node,
                f"broad `except {broad}` neither re-raises nor journals; "
                "narrow it, add a .record(...) call, or annotate "
                "`# repro: noqa[EXC001]` with a justification",
            )


@register
class BareExcept(Rule):
    """EXC002: no bare ``except:`` clauses, anywhere, ever."""

    code = "EXC002"
    name = "bare-except"
    rationale = (
        "A bare except catches SystemExit/KeyboardInterrupt too, making "
        "runs unkillable and hiding every possible failure class."
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    "bare `except:`; name the exception types (at most "
                    "`except Exception`, which EXC001 then audits)",
                )


def _broad_name(node: ast.expr | None) -> str | None:
    """The broad exception name in this handler's type, if any."""
    if node is None:
        return None  # bare except is EXC002's business
    candidates = node.elts if isinstance(node, ast.Tuple) else [node]
    for candidate in candidates:
        if isinstance(candidate, ast.Name) and candidate.id in _BROAD_NAMES:
            return candidate.id
    return None


def _handler_accounts_for_failure(handler: ast.ExceptHandler) -> bool:
    """True when the handler body re-raises or writes a journal record.

    Nested function bodies are skipped — a ``raise`` inside a callback
    defined in the handler does not execute when the handler does.
    """
    stack: list[ast.AST] = list(handler.body)
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Raise):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "record"
        ):
            return True
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
    return False
