"""Determinism hazards in simulation and experiment code.

The paper's figures are regenerated from cached, content-addressed
results (``repro.runner.cache``): a task's payload is its cache key, so
a worker that reads anything *outside* its payload — the wall clock, OS
entropy, hash-randomised set order — poisons the cache and breaks the
parallel == serial guarantee.  These rules police the module trees
where that purity is load-bearing (``repro.simulation``,
``repro.experiments``); the runner itself is exempt because measuring
wall-clock for the journal is its job.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["WallClockRead", "UnorderedSetIteration", "DictPopitem"]

_SCOPE = ("repro.simulation", "repro.experiments")

#: Directory families where determinism discipline is out of scope:
#: examples are narrative scripts, benchmarks exist to read the clock.
_CATEGORY_EXEMPT = ("examples", "benchmarks")

#: Calls that read the wall clock or OS entropy — each one makes a
#: nominally pure worker depend on when/where it ran.
_BANNED_CALLS = frozenset(
    {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbelow", "secrets.choice",
    }
)

#: Builtins whose output order mirrors their input's iteration order.
_ORDER_SENSITIVE_BUILTINS = frozenset(
    {"list", "tuple", "enumerate", "reversed", "iter"}
)


@register
class WallClockRead(Rule):
    """DET001: no wall-clock or OS-entropy reads in simulation code."""

    code = "DET001"
    name = "wall-clock-read"
    rationale = (
        "Simulation/experiment results are cached by payload; reading "
        "the clock or OS entropy makes a result depend on when it ran, "
        "which the cache key cannot see."
    )
    scope = _SCOPE
    category_exempt = _CATEGORY_EXEMPT

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            resolved = ctx.resolve(node.func)
            if resolved in _BANNED_CALLS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"call to {resolved}() in simulation/experiment code; "
                    "simulated time and seeded draws must come from the "
                    "payload, never the host",
                )


@register
class UnorderedSetIteration(Rule):
    """DET002: no iteration over a set feeding ordered output."""

    code = "DET002"
    name = "unordered-set-iteration"
    rationale = (
        "Set iteration order varies with PYTHONHASHSEED and insertion "
        "history; any ordered output derived from it differs across "
        "processes, so shards stop agreeing with serial runs."
    )
    scope = _SCOPE
    category_exempt = _CATEGORY_EXEMPT

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            target: ast.expr | None = None
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                target = node.iter
            elif isinstance(node, ast.comprehension) and _is_set_expr(node.iter):
                target = node.iter
            elif isinstance(node, ast.Call) and _orders_a_set(node):
                target = node
            if target is not None:
                yield self.diagnostic(
                    ctx,
                    target,
                    "iteration over a set feeds ordered output; wrap it in "
                    "sorted(...) to pin the order",
                )


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _orders_a_set(node: ast.Call) -> bool:
    if not node.args or not _is_set_expr(node.args[0]):
        return False
    if isinstance(node.func, ast.Name):
        return node.func.id in _ORDER_SENSITIVE_BUILTINS
    return isinstance(node.func, ast.Attribute) and node.func.attr == "join"


@register
class DictPopitem(Rule):
    """DET003: no ``dict.popitem`` in simulation code."""

    code = "DET003"
    name = "dict-popitem"
    rationale = (
        "popitem() consumes entries in insertion order, which depends on "
        "incidental code history; replays drift when entries were built "
        "in a different order."
    )
    scope = _SCOPE
    category_exempt = _CATEGORY_EXEMPT

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "popitem"
            ):
                yield self.diagnostic(
                    ctx,
                    node,
                    "dict.popitem() consumes insertion order; pop an "
                    "explicit (e.g. sorted) key instead",
                )
