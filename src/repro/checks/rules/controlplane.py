"""Control-plane discipline: circuit mutations go through the controller.

The degradation ladder (:mod:`repro.core.degradation`) only protects
recoveries that flow through :class:`~repro.core.controller.
ShareBackupController` — its retry policy, alternate-spare fallback, and
audit trail all live in ``_assign_backup``.  A call that rewires a
circuit switch directly (``reconfigure``/``connect``/...) or drives a
raw ``failover`` from outside :mod:`repro.core` silently bypasses every
rung of that ladder: no retries, no degradation record, and a transient
circuit-switch fault escalates straight to
:class:`~repro.core.controller.HumanInterventionRequired`.

Chaos injection deliberately does *not* need these calls — faults are
installed through the dedicated hooks (``stuck_ports``,
``fault_injector``, ``crash()``), which model hardware misbehaving, not
software reconfiguring.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..context import FileContext
from ..diagnostics import Diagnostic
from ..registry import Rule, register

__all__ = ["DirectCircuitMutation"]

#: Method names that rewire circuits and are specific enough to flag on
#: any receiver.
_ALWAYS_FLAGGED = frozenset({"reconfigure", "validate_reconfigure", "failover"})

#: Generic-sounding mutators, flagged only when the receiver looks like
#: a circuit switch (to spare unrelated ``connect``/``disconnect`` APIs).
_CS_ONLY_FLAGGED = frozenset({"connect", "disconnect", "splice"})

#: Receiver-name stems that mark a circuit-switch-shaped object.
_CS_STEMS = ("cs", "circuit", "crossbar")


@register
class DirectCircuitMutation(Rule):
    """CHS001: circuit-switch mutations outside repro.core."""

    code = "CHS001"
    name = "direct-circuit-mutation"
    rationale = (
        "Circuit reconfiguration outside repro.core bypasses the "
        "controller's retry policy and degradation ladder; a transient "
        "fault then halts recovery instead of degrading gracefully."
    )
    exempt = ("repro.core",)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr in _ALWAYS_FLAGGED:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"direct circuit-switch mutation .{func.attr}() outside "
                    "repro.core; go through ShareBackupController "
                    "(handle_node_failure / handle_link_failure) so the "
                    "retry policy and degradation ladder apply",
                )
            elif func.attr in _CS_ONLY_FLAGGED and _looks_like_cs(func.value):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"direct circuit-switch mutation .{func.attr}() on a "
                    "circuit-switch receiver outside repro.core; circuit "
                    "wiring changes must flow through the controller",
                )


def _looks_like_cs(receiver: ast.expr) -> bool:
    """Whether ``receiver`` is plausibly a circuit switch.

    Matches a terminal identifier containing a circuit-switch stem
    (``cs``, ``circuit``, ``crossbar``) and subscripts of such names —
    the ``net.circuit_switches[name]`` shape.
    """
    if isinstance(receiver, ast.Subscript):
        return _looks_like_cs(receiver.value)
    if isinstance(receiver, ast.Attribute):
        name = receiver.attr
    elif isinstance(receiver, ast.Name):
        name = receiver.id
    else:
        return False
    lowered = name.lower()
    return any(stem in lowered for stem in _CS_STEMS)
