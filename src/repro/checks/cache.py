"""Incremental lint cache under ``.repro-cache/lint/``.

Same invalidation discipline as the runner's result cache
(:mod:`repro.runner.cache`): an entry is keyed by a content hash plus a
revision token, entries are immutable JSON blobs written atomically,
and a corrupt or unreadable entry is treated as a miss and purged —
the cache can only ever cost a re-parse, never wrong results.

One entry per source file stores *both* products of parsing it:

* the per-file diagnostics (post-suppression — a ``noqa`` edit changes
  the content hash, so stale suppression state cannot survive), and
* the :class:`~repro.checks.callgraph.ModuleSummary` the project model
  links.

Bundling them means a warm run rebuilds the whole-program model and
replays per-file findings without calling the parser once — the
property the test suite pins down by counting
``FileContext.from_source`` calls.

The effective revision is :func:`checks_rev`: the manual
:data:`CHECKS_REV` token (bump it when rule *behaviour* changes
without a code being added or removed) combined with the sorted
registered rule codes, so merely registering a new rule invalidates
every entry automatically.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from .callgraph import ModuleSummary
from .diagnostics import Diagnostic
from .registry import all_rule_codes

__all__ = ["CHECKS_REV", "checks_rev", "LintCache", "CacheStats", "CachedFile"]

#: Manual revision token — bump when rule logic changes in a way the
#: registered-code list does not capture.
CHECKS_REV = "2026.08-4"

#: Cache file-format version (breaking layout changes only).
_FORMAT = 1


def checks_rev() -> str:
    """The effective invalidation token: manual rev + registered codes.

    Looked up at call time, not import time, so rules registered after
    this module is imported still participate.
    """
    return CHECKS_REV + ":" + ",".join(all_rule_codes())


@dataclass
class CacheStats:
    """Hit/miss counters for one lint run."""

    hits: int = 0
    misses: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses}


@dataclass(frozen=True)
class CachedFile:
    """Everything one parse of one file produced."""

    diagnostics: tuple[Diagnostic, ...]
    summary: ModuleSummary


@dataclass
class LintCache:
    """Content-addressed store of :class:`CachedFile` entries."""

    root: Path
    stats: CacheStats = field(default_factory=CacheStats)

    def key(
        self,
        content: str,
        module: str | None,
        category: str | None,
        path: str = "",
    ) -> str:
        digest = hashlib.sha256()
        header = json.dumps(
            {
                "format": _FORMAT,
                "rev": checks_rev(),
                "module": module,
                "category": category,
                # The (repo-relative) path participates so two
                # byte-identical files each keep their own entry —
                # diagnostics and summaries carry the path inside them.
                "path": path,
            },
            sort_keys=True,
        )
        digest.update(header.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(content.encode("utf-8"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(
        self,
        content: str,
        module: str | None,
        category: str | None,
        path: str = "",
    ) -> CachedFile | None:
        """The cached products for this exact content, or ``None``."""
        entry_path = self._entry_path(
            self.key(content, module, category, path)
        )
        try:
            raw = json.loads(entry_path.read_text(encoding="utf-8"))
            diagnostics = tuple(
                Diagnostic.from_dict(d) for d in raw["diagnostics"]
            )
            summary = ModuleSummary.from_json(raw["summary"])
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, ValueError, KeyError, TypeError):
            # Corrupt entry: purge and treat as a miss.
            try:
                entry_path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return CachedFile(diagnostics=diagnostics, summary=summary)

    def put(
        self,
        content: str,
        module: str | None,
        category: str | None,
        entry: CachedFile,
        path: str = "",
    ) -> None:
        """Persist ``entry`` atomically (write-to-temp, then rename)."""
        entry_path = self._entry_path(
            self.key(content, module, category, path)
        )
        payload = json.dumps(
            {
                "diagnostics": [d.to_dict() for d in entry.diagnostics],
                "summary": entry.summary.to_json(),
            },
            sort_keys=True,
        )
        entry_path.parent.mkdir(parents=True, exist_ok=True)
        tmp_path = entry_path.with_suffix(
            f".tmp-{os.getpid()}-{id(entry) & 0xFFFF:x}"
        )
        tmp_path.write_text(payload, encoding="utf-8")
        os.replace(tmp_path, entry_path)
