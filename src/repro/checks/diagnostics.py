"""Diagnostic records emitted by the checks engine.

One frozen dataclass per finding: file, position, rule code, message.
Diagnostics sort by (path, line, column, code) so output is stable
regardless of rule registration or file-discovery order — the same
determinism discipline the rules themselves enforce.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The ``path:line:col: CODE message`` form the CLI prints."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"
