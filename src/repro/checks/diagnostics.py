"""Diagnostic records emitted by the checks engine.

One frozen dataclass per finding: file, position, rule code, message.
Diagnostics sort by (path, line, column, code) so output is stable
regardless of rule registration or file-discovery order — the same
determinism discipline the rules themselves enforce.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Diagnostic"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One rule violation at one source location.

    ``span`` is the inclusive line range a ``# repro: noqa[...]``
    marker may sit on to suppress this diagnostic (a multi-line call
    spans all its physical lines; a decorated ``def`` spans its
    decorators and signature).  It never participates in ordering — two
    diagnostics at the same location compare equal regardless of span.
    """

    path: str
    line: int
    col: int
    code: str
    message: str
    span: tuple[int, int] | None = field(default=None, compare=False)

    def render(self) -> str:
        """The ``path:line:col: CODE message`` form the CLI prints."""
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def suppression_lines(self) -> tuple[int, int]:
        """The inclusive line range a ``noqa`` marker is honored on."""
        if self.span is None:
            return (self.line, self.line)
        return self.span

    def to_dict(self) -> dict[str, object]:
        """A JSON-serialisable form (for ``--format json`` and the cache)."""
        out: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
        if self.span is not None:
            out["span"] = [self.span[0], self.span[1]]
        return out

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Diagnostic":
        """Rebuild from :meth:`to_dict` output (cache entries)."""
        raw_span = data.get("span")
        span: tuple[int, int] | None = None
        if isinstance(raw_span, (list, tuple)) and len(raw_span) == 2:
            span = (_as_int(raw_span[0]), _as_int(raw_span[1]))
        return cls(
            path=str(data["path"]),
            line=_as_int(data["line"]),
            col=_as_int(data["col"]),
            code=str(data["code"]),
            message=str(data["message"]),
            span=span,
        )


def _as_int(value: object) -> int:
    """Narrow a JSON-decoded number to int (cache entries are untyped)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"expected a number, got {type(value).__name__}")
    return int(value)
