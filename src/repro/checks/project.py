"""The linked whole-program model behind the interprocedural rules.

A :class:`ProjectModel` joins the per-file
:class:`~repro.checks.callgraph.ModuleSummary` digests into the three
structures the project rules (:mod:`repro.checks.rules.interproc`)
query:

* a **module table** keyed by dotted name (only files that live under a
  ``repro`` package participate — lint fixtures with ``module=None``
  are carried but can never produce project diagnostics);
* an **import graph** over module-level imports, with edges resolved to
  the longest known module prefix (``from repro.core import network``
  links ``repro.core.network``, not the package);
* a **function index** keyed by ``(module, qualname)`` plus a
  name-based method index, with :meth:`ProjectModel.resolve_ref`
  translating the ``abs:``/``local:``/``method:`` call references the
  extractor recorded into candidate functions.  Resolution follows one
  level of package re-export (``repro.checks.lint_paths`` →
  ``repro.checks.engine.lint_paths``) and is otherwise conservative: an
  unresolvable reference yields no candidates and therefore no
  diagnostics.

The model is built from *summaries*, never from trees — so a warm lint
run can assemble it entirely from the cache without re-parsing a single
unchanged file.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from .callgraph import FunctionSummary, ModuleSummary, summarize
from .context import FileContext

__all__ = ["ProjectModel", "FunctionKey"]

#: ``(module, qualname)`` — the identity of one summarised function.
FunctionKey = tuple[str, str]

#: How many return-call hops PROC010's payload chase will follow.
MAX_CHASE_DEPTH = 4


@dataclass
class ProjectModel:
    """Linked view over every module summary in the reference corpus."""

    #: Every summary, linted or corpus-only, keyed by (normalised) path.
    summaries: dict[str, ModuleSummary] = field(default_factory=dict)
    #: Dotted module name -> summary, for files under a ``repro`` package.
    modules: dict[str, ModuleSummary] = field(default_factory=dict)
    #: Paths the caller asked to lint — project rules report only here.
    linted_paths: frozenset[str] = frozenset()
    #: Module-level import edges between known project modules.
    import_graph: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: ``(module, qualname)`` -> function summary.
    functions: dict[FunctionKey, FunctionSummary] = field(
        default_factory=dict
    )
    #: bare function name -> keys of *methods* with that name.
    _methods_by_name: dict[str, tuple[FunctionKey, ...]] = field(
        default_factory=dict
    )

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    @classmethod
    def from_summaries(
        cls,
        summaries: list[ModuleSummary],
        linted_paths: frozenset[str] | None = None,
    ) -> "ProjectModel":
        """Link ``summaries`` into a queryable model."""
        model = cls()
        for summary in summaries:
            model.summaries[summary.path] = summary
            if summary.module is not None and not summary.syntax_error:
                model.modules[summary.module] = summary
        model.linted_paths = (
            frozenset(model.summaries)
            if linted_paths is None
            else linted_paths
        )
        methods: dict[str, list[FunctionKey]] = {}
        for module, summary in model.modules.items():
            for fn in summary.functions:
                key = (module, fn.qualname)
                model.functions[key] = fn
                if fn.cls is not None:
                    methods.setdefault(fn.name, []).append(key)
        model._methods_by_name = {
            name: tuple(sorted(keys)) for name, keys in methods.items()
        }
        model.import_graph = {
            module: model._module_edges(summary)
            for module, summary in model.modules.items()
        }
        return model

    @classmethod
    def from_sources(
        cls,
        sources: dict[str, str],
        linted: set[str] | None = None,
    ) -> "ProjectModel":
        """Build a model straight from ``{dotted module: source}`` —
        the test-fixture entry point.  ``linted`` restricts the
        reporting surface to those modules (default: all of them).
        """
        module_names = set(sources)
        summaries: list[ModuleSummary] = []
        linted_paths: set[str] = set()
        for module, source in sorted(sources.items()):
            is_package = any(
                other.startswith(module + ".") for other in module_names
            )
            tail = "/__init__.py" if is_package else ".py"
            path = "src/" + module.replace(".", "/") + tail
            ctx = FileContext.from_source(
                source, path=path, module=module, category="src"
            )
            summaries.append(summarize(ctx))
            if linted is None or module in linted:
                linted_paths.add(path)
        return cls.from_summaries(summaries, frozenset(linted_paths))

    def _module_edges(self, summary: ModuleSummary) -> tuple[str, ...]:
        edges: set[str] = set()
        for record in summary.imports:
            target = self.known_module(record.target)
            if target is None and record.fallback:
                target = self.known_module(record.fallback)
            if target is not None and target != summary.module:
                edges.add(target)
        return tuple(sorted(edges))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------

    def known_module(self, dotted: str) -> str | None:
        """The longest prefix of ``dotted`` that names a known module."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None

    def function(self, key: FunctionKey) -> FunctionSummary | None:
        return self.functions.get(key)

    def location_of(self, key: FunctionKey) -> tuple[str, int, int]:
        """``(path, line, col)`` of the function behind ``key``."""
        summary = self.modules[key[0]]
        fn = self.functions[key]
        return (summary.path, fn.lineno, fn.col)

    def resolve_ref(
        self,
        caller_module: str,
        ref: str,
        *,
        methods: bool = False,
        _depth: int = 1,
    ) -> tuple[FunctionKey, ...]:
        """Candidate functions a recorded call reference may reach.

        ``methods=True`` additionally resolves opaque ``method:attr``
        references *by name* to every known method called ``attr`` —
        appropriate for the payload chase (where over-approximation is
        safe: extra candidates only mean extra checking), not for seed
        taint (where it would manufacture false positives).
        """
        if ref.startswith("local:"):
            name = ref[len("local:") :]
            key = (caller_module, name)
            if key in self.functions:
                return (key,)
            return ()
        if ref.startswith("abs:"):
            return self._resolve_abs(ref[len("abs:") :], _depth)
        if methods and ref.startswith("method:"):
            return self._methods_by_name.get(ref[len("method:") :], ())
        return ()

    def _resolve_abs(self, dotted: str, depth: int) -> tuple[FunctionKey, ...]:
        module = self.known_module(dotted)
        if module is None:
            return ()
        remainder = dotted[len(module) :].lstrip(".")
        summary = self.modules[module]
        if not remainder:
            return ()
        if remainder in {fn.qualname for fn in summary.functions}:
            return ((module, remainder),)
        if "." not in remainder and summary.is_package and depth > 0:
            # One level of re-export: ``repro.checks.lint_paths`` where
            # the package ``__init__`` itself imported ``lint_paths``
            # from a submodule.
            suffix = "." + remainder
            for record in summary.imports:
                if record.target.endswith(suffix):
                    resolved = self._resolve_abs(record.target, depth - 1)
                    if resolved:
                        return resolved
        return ()

    # ------------------------------------------------------------------
    # derived analyses
    # ------------------------------------------------------------------

    def import_cycles(self) -> list[tuple[str, ...]]:
        """Elementary import cycles, as canonicalised module tuples.

        Computed per strongly-connected component (iterative Tarjan);
        each non-trivial SCC is reported once as its sorted member
        list — precise enough to name every module that must change to
        break the cycle, without enumerating combinatorially many
        elementary circuits.
        """
        index_of: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        sccs: list[tuple[str, ...]] = []
        counter = 0

        for root in sorted(self.import_graph):
            if root in index_of:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, edge_index = work.pop()
                if edge_index == 0:
                    index_of[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                edges = self.import_graph.get(node, ())
                advanced = False
                for position in range(edge_index, len(edges)):
                    successor = edges[position]
                    if successor not in index_of:
                        work.append((node, position + 1))
                        work.append((successor, 0))
                        advanced = True
                        break
                    if successor in on_stack:
                        low[node] = min(low[node], index_of[successor])
                if advanced:
                    continue
                if low[node] == index_of[node]:
                    component: list[str] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1 or node in self.import_graph.get(
                        node, ()
                    ):
                        sccs.append(tuple(sorted(component)))
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
        return sorted(sccs)

    def seed_tainted(self) -> dict[FunctionKey, FunctionKey]:
        """Functions that transitively draw unseeded entropy.

        Maps each tainted function to the *witness*: the callee (or
        itself, for a direct draw) that anchors the taint.  A function
        with a seed/rng parameter is never tainted — the per-file rules
        already presume such a parameter is threaded, and the project
        pass keeps the same contract.  Taint flows caller-ward only
        through call sites that do not visibly thread seed state, and
        only through ``abs:``/``local:`` references — name-based method
        matching would manufacture taint between unrelated classes.
        """
        tainted: dict[FunctionKey, FunctionKey] = {}
        for key, fn in self.functions.items():
            if fn.accepts_seed:
                continue
            if any(not draw.threads_seed for draw in fn.draws):
                tainted[key] = key
        changed = True
        while changed:
            changed = False
            for key, fn in self.functions.items():
                if key in tainted or fn.accepts_seed:
                    continue
                for call in fn.calls:
                    if call.threads_seed:
                        continue
                    for callee in self.resolve_ref(key[0], call.ref):
                        if callee in tainted and callee != key:
                            tainted[key] = callee
                            changed = True
                            break
                    if key in tainted:
                        break
        return tainted

    def nonjson_witness(
        self,
        key: FunctionKey,
        _depth: int = MAX_CHASE_DEPTH,
        _visited: frozenset[FunctionKey] = frozenset(),
    ) -> tuple[FunctionKey, str] | None:
        """Whether ``key`` can return a non-JSON-serialisable value.

        Chases calls nested in return expressions up to
        :data:`MAX_CHASE_DEPTH` hops, returning ``(function, label)``
        for the first offending construct found, else ``None``.
        """
        fn = self.functions.get(key)
        if fn is None:
            return None
        if fn.nonjson_returns:
            return (key, fn.nonjson_returns[0].label)
        if _depth <= 0:
            return None
        visited = _visited | {key}
        for call in fn.return_calls:
            for callee in self.resolve_ref(key[0], call.ref, methods=True):
                if callee in visited:
                    continue
                witness = self.nonjson_witness(
                    callee, _depth - 1, visited
                )
                if witness is not None:
                    return witness
        return None


def discover_corpus(paths: list[Path]) -> list[Path]:
    """The reference corpus for whole-program analysis.

    Walks up from the first linted file to the repository root (the
    nearest ancestor holding ``pyproject.toml`` or ``.git``) and
    returns every Python file under its ``src``/``tests``/``examples``/
    ``benchmarks`` trees.  The corpus is a property of the *repository*,
    not of which paths were linted — ``repro lint src/repro`` and a
    bare ``repro lint`` judge liveness against the same evidence.
    Outside any repository (lint fixtures in temp dirs) the corpus is
    just the linted files themselves.
    """
    root = repo_root_for(paths)
    if root is None:
        return sorted(paths)
    corpus: set[Path] = set(paths)
    for tree in ("src", "tests", "examples", "benchmarks"):
        base = root / tree
        if not base.is_dir():
            continue
        for candidate in base.rglob("*.py"):
            if any(
                part in _CORPUS_SKIP_DIRS for part in candidate.parts
            ):
                continue
            corpus.add(candidate.resolve())
    return sorted(corpus)


_CORPUS_SKIP_DIRS = {"__pycache__", ".git", ".repro-cache"}


def repo_root_for(paths: list[Path]) -> Path | None:
    """The nearest ancestor of any path holding ``pyproject.toml`` or
    ``.git`` — the anchor for corpus discovery, cache placement, and
    repo-relative diagnostic paths.  ``None`` outside any repository."""
    for path in paths:
        current = path.resolve().parent
        while True:
            if (current / "pyproject.toml").is_file() or (
                current / ".git"
            ).exists():
                return current
            if current.parent == current:
                break
            current = current.parent
    return None
