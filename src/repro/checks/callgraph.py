"""Per-module summaries: the facts the whole-program pass links.

The project model (:mod:`repro.checks.project`) never holds parsed
trees for the whole repository — it holds one :class:`ModuleSummary`
per file, extracted in a single AST walk and serialisable to JSON so
the incremental lint cache (:mod:`repro.checks.cache`) can persist it.
A summary records exactly what the interprocedural rules consume:

* module-level import records (IMP001's cycle graph; deferred imports
  inside functions are the sanctioned cycle-breaker and are excluded);
* ``__all__`` export claims and every identifier the file references
  (DEAD001's liveness evidence — including identifier tokens inside
  short string constants, which is how the runner's by-name worker
  references like ``"repro.runner.testing:flaky_payload"`` count);
* one :class:`FunctionSummary` per module-level function and per
  method: seed parameters, entropy draws, best-effort call sites
  (RNG010's taint graph), calls nested in return expressions and
  non-JSON constructs returned (PROC010), circuit-switch mutations and
  which *parameters* they mutate (CHS010).

Call references are deliberately modest: ``abs:<dotted>`` when the
callee resolves through the file's imports, ``local:<name>`` for a bare
name, ``method:<attr>`` for an attribute call whose receiver is opaque
(``self.helper()``, ``plan.payload()``).  Linking them to functions is
the model's job; unresolvable calls stay unlinked and never produce
diagnostics — conservative by construction.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

from .concurrency import (
    ConcurrencySummary,
    analyze_function,
    lock_attribute_names,
    module_global_names,
)
from .context import FileContext
from .numeric import NumericSummary, analyze_kernels
from .rules.controlplane import _ALWAYS_FLAGGED, _CS_ONLY_FLAGGED, _looks_like_cs
from .rules.process import _non_json_nodes, _payload_expressions
from .rules.rng import _accepts_seed, _is_draw, _threads_seed_state

__all__ = [
    "CallSite",
    "DrawSite",
    "PayloadSite",
    "NonJsonReturn",
    "FunctionSummary",
    "ImportRecord",
    "ModuleSummary",
    "summarize",
]

#: Decorator names that register a class with the rule framework —
#: a registered rule class is reachable through the registry even when
#: nothing imports it by name.
_REGISTERING_DECORATORS = frozenset({"register", "register_project"})

#: Longest string constant mined for identifier tokens (liveness refs).
_MAX_REF_STRING = 200


@dataclass(frozen=True)
class CallSite:
    """One call expression inside a function body."""

    ref: str  #: ``abs:…`` / ``local:…`` / ``method:…`` / ``""`` opaque
    lineno: int
    col: int
    threads_seed: bool  #: a seed/rng-named value appears among the args
    cs_arg_positions: tuple[int, ...]  #: positional args that look cs-shaped

    def to_json(self) -> dict[str, object]:
        return {
            "ref": self.ref,
            "lineno": self.lineno,
            "col": self.col,
            "threads_seed": self.threads_seed,
            "cs_arg_positions": list(self.cs_arg_positions),
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "CallSite":
        return cls(
            ref=str(data["ref"]),
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
            threads_seed=bool(data["threads_seed"]),
            cs_arg_positions=tuple(
                _i(p) for p in _l(data["cs_arg_positions"])
            ),
        )


@dataclass(frozen=True)
class DrawSite:
    """One direct entropy draw (``ensure_rng``/``default_rng``/``Random``)."""

    what: str
    lineno: int
    col: int
    threads_seed: bool

    def to_json(self) -> dict[str, object]:
        return {
            "what": self.what,
            "lineno": self.lineno,
            "col": self.col,
            "threads_seed": self.threads_seed,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "DrawSite":
        return cls(
            what=str(data["what"]),
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
            threads_seed=bool(data["threads_seed"]),
        )


@dataclass(frozen=True)
class PayloadSite:
    """One ``Task(..., payload)`` construction and the calls inside it."""

    lineno: int
    col: int
    call_refs: tuple[str, ...]

    def to_json(self) -> dict[str, object]:
        return {
            "lineno": self.lineno,
            "col": self.col,
            "call_refs": list(self.call_refs),
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "PayloadSite":
        return cls(
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
            call_refs=tuple(str(r) for r in _l(data["call_refs"])),
        )


@dataclass(frozen=True)
class NonJsonReturn:
    """A non-JSON-serialisable construct inside a ``return`` expression."""

    label: str
    lineno: int
    col: int

    def to_json(self) -> dict[str, object]:
        return {"label": self.label, "lineno": self.lineno, "col": self.col}

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "NonJsonReturn":
        return cls(
            label=str(data["label"]),
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
        )


@dataclass(frozen=True)
class FunctionSummary:
    """Everything the interprocedural rules know about one function."""

    qualname: str  #: ``fn`` or ``Class.fn``
    cls: str | None
    name: str
    lineno: int
    col: int
    is_public: bool
    accepts_seed: bool
    params: tuple[str, ...]
    draws: tuple[DrawSite, ...]
    calls: tuple[CallSite, ...]
    return_calls: tuple[CallSite, ...]
    nonjson_returns: tuple[NonJsonReturn, ...]
    payload_sites: tuple[PayloadSite, ...]
    mutated_params: tuple[str, ...]
    mutates_circuit: bool
    is_async: bool = False
    #: Present only for ``async def`` — the concurrency-rule facts.
    concurrency: ConcurrencySummary | None = None
    is_kernel: bool = False
    #: Present only for ``@kernel`` functions — the numeric-rule facts.
    numeric: NumericSummary | None = None

    def to_json(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "cls": self.cls,
            "name": self.name,
            "lineno": self.lineno,
            "col": self.col,
            "is_public": self.is_public,
            "accepts_seed": self.accepts_seed,
            "params": list(self.params),
            "draws": [d.to_json() for d in self.draws],
            "calls": [c.to_json() for c in self.calls],
            "return_calls": [c.to_json() for c in self.return_calls],
            "nonjson_returns": [r.to_json() for r in self.nonjson_returns],
            "payload_sites": [p.to_json() for p in self.payload_sites],
            "mutated_params": list(self.mutated_params),
            "mutates_circuit": self.mutates_circuit,
            "is_async": self.is_async,
            "concurrency": (
                None if self.concurrency is None else self.concurrency.to_json()
            ),
            "is_kernel": self.is_kernel,
            "numeric": (
                None if self.numeric is None else self.numeric.to_json()
            ),
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "FunctionSummary":
        raw_cls = data["cls"]
        raw_concurrency = data.get("concurrency")
        raw_numeric = data.get("numeric")
        return cls(
            qualname=str(data["qualname"]),
            cls=None if raw_cls is None else str(raw_cls),
            name=str(data["name"]),
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
            is_public=bool(data["is_public"]),
            accepts_seed=bool(data["accepts_seed"]),
            params=tuple(str(p) for p in _l(data["params"])),
            draws=tuple(
                DrawSite.from_json(_d(d)) for d in _l(data["draws"])
            ),
            calls=tuple(
                CallSite.from_json(_d(c)) for c in _l(data["calls"])
            ),
            return_calls=tuple(
                CallSite.from_json(_d(c)) for c in _l(data["return_calls"])
            ),
            nonjson_returns=tuple(
                NonJsonReturn.from_json(_d(r))
                for r in _l(data["nonjson_returns"])
            ),
            payload_sites=tuple(
                PayloadSite.from_json(_d(p))
                for p in _l(data["payload_sites"])
            ),
            mutated_params=tuple(
                str(p) for p in _l(data["mutated_params"])
            ),
            mutates_circuit=bool(data["mutates_circuit"]),
            is_async=bool(data.get("is_async", False)),
            concurrency=(
                None
                if raw_concurrency is None
                else ConcurrencySummary.from_json(_d(raw_concurrency))
            ),
            is_kernel=bool(data.get("is_kernel", False)),
            numeric=(
                None
                if raw_numeric is None
                else NumericSummary.from_json(_d(raw_numeric))
            ),
        )


@dataclass(frozen=True)
class ImportRecord:
    """One module-level import binding, as absolute dotted candidates.

    ``target`` is the most specific candidate (``base.name`` for a
    ``from base import name``), ``fallback`` the containing module
    (``base``), empty when there is none.  Linking picks the longest
    candidate that names a known project module.
    """

    target: str
    fallback: str
    lineno: int

    def to_json(self) -> dict[str, object]:
        return {
            "target": self.target,
            "fallback": self.fallback,
            "lineno": self.lineno,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "ImportRecord":
        return cls(
            target=str(data["target"]),
            fallback=str(data["fallback"]),
            lineno=_i(data["lineno"]),
        )


@dataclass
class ModuleSummary:
    """The cached, linkable digest of one source file."""

    path: str
    module: str | None
    category: str | None
    is_package: bool
    imports: tuple[ImportRecord, ...] = ()
    exports: tuple[tuple[str, int], ...] = ()
    has_all: bool = False
    toplevel_bound: tuple[str, ...] = ()
    self_registering: tuple[str, ...] = ()
    refs: frozenset[str] = frozenset()
    functions: tuple[FunctionSummary, ...] = ()
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)
    syntax_error: bool = False

    def is_suppressed(
        self, line: int, code: str, end_line: int | None = None
    ) -> bool:
        """Same contract as :meth:`FileContext.is_suppressed`."""
        wanted = code.upper()
        for candidate in range(line, (end_line or line) + 1):
            codes = self.noqa.get(candidate)
            if codes is not None and (wanted in codes or "*" in codes):
                return True
        return False

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "module": self.module,
            "category": self.category,
            "is_package": self.is_package,
            "imports": [imp.to_json() for imp in self.imports],
            "exports": [[name, lineno] for name, lineno in self.exports],
            "has_all": self.has_all,
            "toplevel_bound": list(self.toplevel_bound),
            "self_registering": list(self.self_registering),
            "refs": sorted(self.refs),
            "functions": [fn.to_json() for fn in self.functions],
            "noqa": {
                str(line): sorted(codes)
                for line, codes in sorted(self.noqa.items())
            },
            "syntax_error": self.syntax_error,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "ModuleSummary":
        raw_module = data["module"]
        raw_category = data["category"]
        raw_noqa = _d(data["noqa"])
        return cls(
            path=str(data["path"]),
            module=None if raw_module is None else str(raw_module),
            category=None if raw_category is None else str(raw_category),
            is_package=bool(data["is_package"]),
            imports=tuple(
                ImportRecord.from_json(_d(imp)) for imp in _l(data["imports"])
            ),
            exports=tuple(
                (str(_l(entry)[0]), _i(_l(entry)[1]))
                for entry in _l(data["exports"])
            ),
            has_all=bool(data["has_all"]),
            toplevel_bound=tuple(
                str(n) for n in _l(data["toplevel_bound"])
            ),
            self_registering=tuple(
                str(n) for n in _l(data["self_registering"])
            ),
            refs=frozenset(str(r) for r in _l(data["refs"])),
            functions=tuple(
                FunctionSummary.from_json(_d(fn))
                for fn in _l(data["functions"])
            ),
            noqa={
                int(line): frozenset(str(c) for c in _l(codes))
                for line, codes in raw_noqa.items()
            },
            syntax_error=bool(data["syntax_error"]),
        )


# ----------------------------------------------------------------------
# extraction
# ----------------------------------------------------------------------


def summarize(ctx: FileContext) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed file."""
    tree = ctx.tree
    return ModuleSummary(
        path=ctx.path,
        module=ctx.module,
        category=ctx.category,
        is_package=ctx.path.endswith("__init__.py"),
        imports=tuple(
            _iter_import_records(
                tree, ctx.module, ctx.path.endswith("__init__.py")
            )
        ),
        exports=tuple(_collect_exports(tree)),
        has_all=any(
            isinstance(node, ast.Assign)
            and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            )
            for node in tree.body
        ),
        toplevel_bound=tuple(sorted(_toplevel_bound_names(tree))),
        self_registering=tuple(sorted(_self_registering_classes(tree))),
        refs=frozenset(_collect_refs(tree)),
        functions=tuple(_summarize_functions(ctx)),
        noqa=dict(ctx.noqa),
    )


def syntax_error_summary(
    path: str, module: str | None, category: str | None
) -> ModuleSummary:
    """A stub summary for a file the parser rejected — cached so warm
    runs do not re-parse a file that is known broken."""
    return ModuleSummary(
        path=path,
        module=module,
        category=category,
        is_package=path.endswith("__init__.py"),
        syntax_error=True,
    )


def _iter_import_records(
    tree: ast.Module, module: str | None, is_package: bool
) -> Iterator[ImportRecord]:
    """Module-level imports only — a deferred import inside a function
    is the sanctioned way to break a cycle and never feeds IMP001."""
    for stmt in _toplevel_statements(tree):
        if isinstance(stmt, ast.Import):
            for item in stmt.names:
                yield ImportRecord(
                    target=item.name, fallback="", lineno=stmt.lineno
                )
        elif isinstance(stmt, ast.ImportFrom):
            base = stmt.module or ""
            if stmt.level:
                base = _resolve_relative_base(
                    base, stmt.level, module, is_package
                )
            for item in stmt.names:
                if item.name == "*":
                    yield ImportRecord(
                        target=base, fallback="", lineno=stmt.lineno
                    )
                    continue
                target = f"{base}.{item.name}" if base else item.name
                yield ImportRecord(
                    target=target, fallback=base, lineno=stmt.lineno
                )


def _toplevel_statements(tree: ast.Module) -> Iterator[ast.stmt]:
    """Module-body statements, descending into top-level ``try``/``if``
    blocks except ``if TYPE_CHECKING`` (typing-only imports cannot
    create runtime cycles)."""
    stack: list[ast.stmt] = list(reversed(tree.body))
    while stack:
        stmt = stack.pop()
        if isinstance(stmt, ast.If):
            if _mentions_type_checking(stmt.test):
                stack.extend(reversed(stmt.orelse))
                continue
            stack.extend(reversed(stmt.body + stmt.orelse))
        elif isinstance(stmt, ast.Try):
            handler_bodies = [s for h in stmt.handlers for s in h.body]
            stack.extend(
                reversed(
                    stmt.body + handler_bodies + stmt.orelse + stmt.finalbody
                )
            )
        else:
            yield stmt


def _mentions_type_checking(test: ast.expr) -> bool:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == "TYPE_CHECKING":
            return True
        if isinstance(node, ast.Attribute) and node.attr == "TYPE_CHECKING":
            return True
    return False


def _resolve_relative_base(
    base: str, level: int, module: str | None, is_package: bool
) -> str:
    """Absolute form of a relative import.

    Inside a package ``__init__`` the dotted module name *is* the
    package, so ``from . import x`` (level 1) resolves against the
    module name itself; in a plain module, level 1 strips the final
    component first.
    """
    if module is None:
        return base
    package = module.split(".")
    drop = level - 1 if is_package else level
    package = package[: len(package) - drop] if drop <= len(package) else []
    prefix = ".".join(package)
    if prefix and base:
        return f"{prefix}.{base}"
    return prefix or base


def _collect_exports(tree: ast.Module) -> Iterator[tuple[str, int]]:
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "__all__" for t in stmt.targets
        ):
            continue
        if isinstance(stmt.value, (ast.List, ast.Tuple)):
            for element in stmt.value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    yield (element.value, element.lineno)


def _toplevel_bound_names(tree: ast.Module) -> set[str]:
    bound: set[str] = set()
    for stmt in _toplevel_statements(tree):
        if isinstance(stmt, ast.Import):
            for item in stmt.names:
                bound.add(item.asname or item.name.split(".")[0])
        elif isinstance(stmt, ast.ImportFrom):
            for item in stmt.names:
                bound.add(item.asname or item.name)
    return bound


def _self_registering_classes(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for stmt in tree.body:
        if not isinstance(stmt, ast.ClassDef):
            continue
        for decorator in stmt.decorator_list:
            node = (
                decorator.func
                if isinstance(decorator, ast.Call)
                else decorator
            )
            tail = (
                node.attr
                if isinstance(node, ast.Attribute)
                else node.id if isinstance(node, ast.Name) else ""
            )
            if tail in _REGISTERING_DECORATORS:
                names.add(stmt.name)
    return names


def _collect_refs(tree: ast.Module) -> set[str]:
    import re as _re

    refs: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            refs.add(node.id)
        elif isinstance(node, ast.Attribute):
            refs.add(node.attr)
        elif isinstance(node, ast.Import):
            for item in node.names:
                refs.update(item.name.split("."))
                if item.asname:
                    refs.add(item.asname)
        elif isinstance(node, ast.ImportFrom):
            if node.module:
                refs.update(node.module.split("."))
            for item in node.names:
                refs.add(item.name)
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            if len(node.value) <= _MAX_REF_STRING:
                refs.update(
                    _re.findall(r"[A-Za-z_][A-Za-z0-9_]*", node.value)
                )
    return refs


def _summarize_functions(ctx: FileContext) -> Iterator[FunctionSummary]:
    module_globals = module_global_names(ctx.tree)
    # ``name -> NumericSummary`` for the file's @kernel functions; empty
    # for the (vast) majority of files with no registered kernels.
    kernel_facts = analyze_kernels(ctx)
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield _summarize_function(
                ctx,
                stmt,
                cls=None,
                module_globals=module_globals,
                numeric=kernel_facts.get(stmt.name),
            )
        elif isinstance(stmt, ast.ClassDef):
            lock_names = lock_attribute_names(stmt, ctx.resolve)
            for member in stmt.body:
                if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield _summarize_function(
                        ctx,
                        member,
                        cls=stmt.name,
                        module_globals=module_globals,
                        lock_names=lock_names,
                    )


def _summarize_function(
    ctx: FileContext,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    cls: str | None,
    module_globals: frozenset[str] = frozenset(),
    lock_names: frozenset[str] = frozenset(),
    numeric: NumericSummary | None = None,
) -> FunctionSummary:
    params = tuple(
        arg.arg
        for arg in [
            *fn.args.posonlyargs,
            *fn.args.args,
        ]
    )
    draws: list[DrawSite] = []
    calls: list[CallSite] = []
    mutated: set[str] = set()
    mutates_circuit = False
    payload_sites: list[PayloadSite] = []

    return_nodes: set[int] = set()
    nonjson: list[NonJsonReturn] = []
    return_calls: list[CallSite] = []
    for node in ast.walk(fn):
        if isinstance(node, ast.Return) and node.value is not None:
            for offender, label in _non_json_nodes(node.value):
                nonjson.append(
                    NonJsonReturn(
                        label=label,
                        lineno=offender.lineno,
                        col=offender.col_offset + 1,
                    )
                )
            for call in ast.walk(node.value):
                if isinstance(call, ast.Call):
                    return_nodes.add(id(call))

    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        site = _call_site(ctx, node)
        calls.append(site)
        if id(node) in return_nodes:
            return_calls.append(site)
        if _is_draw(ctx, node):
            draws.append(
                DrawSite(
                    what=ctx.resolve(node.func) or "",
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                    threads_seed=_threads_seed_state(node),
                )
            )
        func = node.func
        if isinstance(func, ast.Attribute):
            is_mutation = func.attr in _ALWAYS_FLAGGED or (
                func.attr in _CS_ONLY_FLAGGED and _looks_like_cs(func.value)
            )
            if is_mutation:
                mutates_circuit = True
            if func.attr in _ALWAYS_FLAGGED | _CS_ONLY_FLAGGED:
                receiver = func.value
                if isinstance(receiver, ast.Name) and receiver.id in params:
                    mutated.add(receiver.id)
                    mutates_circuit = True
        for payload in _payload_expressions(node):
            refs = tuple(
                _call_site(ctx, inner).ref
                for inner in ast.walk(payload)
                if isinstance(inner, ast.Call)
            )
            payload_sites.append(
                PayloadSite(
                    lineno=payload.lineno,
                    col=payload.col_offset + 1,
                    call_refs=tuple(r for r in refs if r),
                )
            )

    dunder = fn.name.startswith("__") and fn.name.endswith("__")
    is_async = isinstance(fn, ast.AsyncFunctionDef)
    concurrency = (
        analyze_function(
            ctx, fn, module_globals=module_globals, lock_names=lock_names
        )
        if isinstance(fn, ast.AsyncFunctionDef)
        else None
    )
    return FunctionSummary(
        qualname=f"{cls}.{fn.name}" if cls else fn.name,
        cls=cls,
        name=fn.name,
        lineno=fn.lineno,
        col=fn.col_offset + 1,
        is_public=dunder or not fn.name.startswith("_"),
        accepts_seed=_accepts_seed(fn),
        params=params,
        draws=tuple(draws),
        calls=tuple(calls),
        return_calls=tuple(return_calls),
        nonjson_returns=tuple(nonjson),
        payload_sites=tuple(payload_sites),
        mutated_params=tuple(sorted(mutated)),
        mutates_circuit=mutates_circuit,
        is_async=is_async,
        concurrency=concurrency,
        is_kernel=numeric is not None,
        numeric=numeric,
    )


def _call_site(ctx: FileContext, node: ast.Call) -> CallSite:
    resolved = ctx.resolve(node.func)
    if resolved is not None:
        ref = f"abs:{resolved}"
    elif isinstance(node.func, ast.Name):
        ref = f"local:{node.func.id}"
    elif isinstance(node.func, ast.Attribute):
        ref = f"method:{node.func.attr}"
    else:
        ref = ""
    cs_positions = tuple(
        index
        for index, arg in enumerate(node.args)
        if not isinstance(arg, ast.Starred) and _looks_like_cs(arg)
    )
    return CallSite(
        ref=ref,
        lineno=node.lineno,
        col=node.col_offset + 1,
        threads_seed=_threads_seed_state(node),
        cs_arg_positions=cs_positions,
    )


# ----------------------------------------------------------------------
# JSON-shape narrowing helpers (cache entries arrive untyped)
# ----------------------------------------------------------------------


def _i(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"expected a number, got {type(value).__name__}")
    return int(value)


def _l(value: object) -> list[object]:
    if not isinstance(value, (list, tuple)):
        raise TypeError(f"expected a list, got {type(value).__name__}")
    return list(value)


def _d(value: object) -> dict[str, object]:
    if not isinstance(value, dict):
        raise TypeError(f"expected an object, got {type(value).__name__}")
    return value
