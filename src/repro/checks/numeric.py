"""Abstract interpretation of ``@kernel`` numeric code (NUM001–NUM004).

The vectorized water-fill core (:mod:`repro.simulation.columnar`) is the
engine's hottest path and the designated numba target (ROADMAP item 1).
Its correctness claims are *numeric*: every array keeps the dtype the
bit-identity proof assumes, every broadcast is intentional, no in-place
pass mutates data another view of the same buffer later observes, and
the whole kernel stays inside the ``nopython`` subset so the JIT swap
is a no-op.  None of those properties is visible to a general linter;
this module checks them statically, the same extract-then-judge way the
concurrency analyzer (:mod:`repro.checks.concurrency`) polices the
event loop.

**Extraction.**  :func:`analyze_kernels` finds every function in a file
decorated with the ``@kernel`` registry decorator
(:mod:`repro.simulation.kernels`), reads the declared array contracts
*literally from the decorator AST* (no import, no execution), and runs
an abstract interpreter over the body.  Each variable carries a value
in a small lattice:

* **dtype** — a numpy dtype name or unknown, advanced through ufunc
  promotion (true division always yields a float, comparisons and
  logical ops yield ``bool``);
* **symbolic shape** — a tuple of dims, each an integer literal, a
  ``(symbol, offset)`` pair (so ``remaining.shape[0] - 1`` unifies with
  a ``"segments+1"`` declaration), or unknown;
* **region** — a ``(buffer, index-path)`` pair for aliasing: basic
  slicing yields a sub-region of the same buffer, advanced (fancy)
  indexing, ``.copy()``, and array constructors yield fresh buffers.

Loops are interpreted twice with a lattice join between passes, so
facts that only hold on the first iteration (a compacted ``alive`` set,
say) are not over-trusted.  Anything the interpreter cannot model
decays to unknown — unknowns never produce findings, so the analysis
is conservative in the no-false-positives direction.

**Findings** are :class:`NumericIssue` records (plus
:class:`KernelCall` records for calls only the whole-program model can
classify), carried on ``FunctionSummary.numeric`` and JSON
round-tripped through the incremental lint cache — a warm run replays
them without re-parsing.  The NUM001–NUM004 project rules
(:mod:`repro.checks.rules.numeric`) turn them into diagnostics and use
the :class:`~repro.checks.project.ProjectModel` call graph to decide
whether a cross-module helper call stays inside the kernel universe.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence, Union

from .context import FileContext

__all__ = [
    "NumericIssue",
    "KernelCall",
    "NumericSummary",
    "ParsedKernelSpec",
    "collect_kernel_specs",
    "analyze_kernels",
]

#: A symbolic dimension: a literal, a ``(symbol, offset)`` pair, or
#: unknown.  ``("segments", 1)`` is the length ``segments + 1``.
Dim = Union[int, tuple[str, int], None]

#: A shape is a tuple of dims; ``None`` when even the rank is unknown.
Shape = Union[tuple[Dim, ...], None]

#: Dotted names the decorator may resolve to and still mean "the kernel
#: registry decorator".
_KERNEL_DECORATORS = frozenset(
    {"repro.simulation.kernels.kernel", "repro.simulation.kernel"}
)

#: Builtins a ``nopython`` kernel may call freely.
_SAFE_BUILTINS = frozenset(
    {
        "range",
        "len",
        "enumerate",
        "zip",
        "abs",
        "min",
        "max",
        "int",
        "float",
        "bool",
        "round",
        "divmod",
    }
)

#: Method names a kernel may call on its array/list/scalar values.
_SAFE_METHODS = frozenset(
    {
        "copy",
        "ravel",
        "reshape",
        "astype",
        "fill",
        "item",
        "sum",
        "min",
        "max",
        "any",
        "all",
        "argmin",
        "argmax",
        "nonzero",
        "append",
        "pop",
        "clear",
        "extend",
        "sort",
    }
)

#: Known numpy dtype spellings, canonicalised.
_DTYPE_NAMES = {
    "bool": "bool",
    "bool_": "bool",
    "int8": "int8",
    "int16": "int16",
    "int32": "int32",
    "int64": "int64",
    "int": "int64",
    "intp": "int64",
    "uint8": "uint8",
    "uint16": "uint16",
    "uint32": "uint32",
    "uint64": "uint64",
    "float32": "float32",
    "float64": "float64",
    "float": "float64",
    "double": "float64",
}

#: Width order inside each kind, for narrowing detection.
_RANK = {
    "bool": 0,
    "int8": 1,
    "uint8": 1,
    "int16": 2,
    "uint16": 2,
    "int32": 3,
    "uint32": 3,
    "int64": 4,
    "uint64": 4,
    "float32": 5,
    "float64": 6,
}

_DIM_RE = re.compile(r"^([A-Za-z_]\w*)\s*(?:([+-])\s*(\d+))?$")


# ----------------------------------------------------------------------
# serialisable facts
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class NumericIssue:
    """One extraction-time finding inside a kernel body."""

    kind: str  #: ``narrowing`` | ``shape`` | ``alias`` | ``nopython``
    lineno: int
    col: int
    detail: str

    def to_json(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "lineno": self.lineno,
            "col": self.col,
            "detail": self.detail,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "NumericIssue":
        return cls(
            kind=str(data["kind"]),
            lineno=_int(data["lineno"]),
            col=_int(data["col"]),
            detail=str(data["detail"]),
        )


@dataclass(frozen=True)
class KernelCall:
    """A call only the whole-program model can classify (NUM004)."""

    ref: str  #: an ``abs:…`` call reference into project code
    lineno: int
    col: int

    def to_json(self) -> dict[str, object]:
        return {"ref": self.ref, "lineno": self.lineno, "col": self.col}

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "KernelCall":
        return cls(
            ref=str(data["ref"]),
            lineno=_int(data["lineno"]),
            col=_int(data["col"]),
        )


@dataclass(frozen=True)
class NumericSummary:
    """Everything the NUM rules know about one kernel function."""

    issues: tuple[NumericIssue, ...] = ()
    unresolved_calls: tuple[KernelCall, ...] = ()

    def to_json(self) -> dict[str, object]:
        return {
            "issues": [issue.to_json() for issue in self.issues],
            "unresolved_calls": [
                call.to_json() for call in self.unresolved_calls
            ],
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "NumericSummary":
        return cls(
            issues=tuple(
                NumericIssue.from_json(_dict(issue))
                for issue in _list(data["issues"])
            ),
            unresolved_calls=tuple(
                KernelCall.from_json(_dict(call))
                for call in _list(data["unresolved_calls"])
            ),
        )


# ----------------------------------------------------------------------
# declared kernel contracts (parsed from decorator literals)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ParsedKernelSpec:
    """A ``@kernel(arrays=…, returns=…)`` contract read from the AST."""

    arrays: Mapping[str, tuple[str | None, tuple[Dim, ...] | None]]
    returns: tuple[str | None, tuple[Dim, ...] | None] | None


def _parse_dim(raw: object) -> Dim:
    if isinstance(raw, bool):
        return None
    if isinstance(raw, int):
        return raw
    if isinstance(raw, str):
        if raw.isdigit():
            return int(raw)
        match = _DIM_RE.match(raw)
        if match is None:
            return None
        offset = int(match.group(3)) if match.group(3) else 0
        if match.group(2) == "-":
            offset = -offset
        return (match.group(1), offset)
    return None


def _parse_array_spec(
    node: ast.expr,
) -> tuple[str | None, tuple[Dim, ...] | None] | None:
    """``("float64", ("rows", "width"))`` as a literal, else ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)) or len(node.elts) != 2:
        return None
    dtype_node, dims_node = node.elts
    dtype: str | None = None
    if isinstance(dtype_node, ast.Constant) and isinstance(
        dtype_node.value, str
    ):
        dtype = _DTYPE_NAMES.get(dtype_node.value)
    dims: tuple[Dim, ...] | None = None
    if isinstance(dims_node, (ast.Tuple, ast.List)):
        parsed: list[Dim] = []
        for element in dims_node.elts:
            if isinstance(element, ast.Constant):
                parsed.append(_parse_dim(element.value))
            else:
                parsed.append(None)
        dims = tuple(parsed)
    return (dtype, dims)


def _kernel_decorator_call(
    ctx: FileContext, fn: ast.FunctionDef | ast.AsyncFunctionDef
) -> ast.Call | bool:
    """The ``@kernel(...)`` call node, ``True`` for a bare ``@kernel``,
    ``False`` when the function is not kernel-registered."""
    for decorator in fn.decorator_list:
        node = (
            decorator.func if isinstance(decorator, ast.Call) else decorator
        )
        resolved = ctx.resolve(node)
        if resolved is not None:
            if resolved not in _KERNEL_DECORATORS:
                continue
        else:
            tail = (
                node.id
                if isinstance(node, ast.Name)
                else node.attr if isinstance(node, ast.Attribute) else ""
            )
            if tail != "kernel":
                continue
        return decorator if isinstance(decorator, ast.Call) else True
    return False


def collect_kernel_specs(ctx: FileContext) -> dict[str, ParsedKernelSpec]:
    """Declared contracts for every top-level ``@kernel`` function."""
    specs: dict[str, ParsedKernelSpec] = {}
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        found = _kernel_decorator_call(ctx, stmt)
        if found is False:
            continue
        arrays: dict[str, tuple[str | None, tuple[Dim, ...] | None]] = {}
        returns: tuple[str | None, tuple[Dim, ...] | None] | None = None
        if isinstance(found, ast.Call):
            for keyword in found.keywords:
                if keyword.arg == "arrays" and isinstance(
                    keyword.value, ast.Dict
                ):
                    for key, value in zip(
                        keyword.value.keys, keyword.value.values
                    ):
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            parsed = _parse_array_spec(value)
                            if parsed is not None:
                                arrays[key.value] = parsed
                elif keyword.arg == "returns":
                    returns = _parse_array_spec(keyword.value)
        specs[stmt.name] = ParsedKernelSpec(arrays=arrays, returns=returns)
    return specs


# ----------------------------------------------------------------------
# the value lattice
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class _Region:
    """Which buffer a value lives in and through which index path."""

    base: int
    #: Each step is a tuple of per-axis keys (``int`` constant, ``":"``
    #: full/partial slice, ``"?"`` unknown position) or ``"*"`` for a
    #: rank-changing view (ravel/reshape).
    path: tuple[object, ...]

    def child(self, step: object) -> "_Region":
        return _Region(self.base, self.path + (step,))


def _regions_overlap(a: _Region, b: _Region) -> bool:
    if a.base != b.base:
        return False
    for step_a, step_b in zip(a.path, b.path):
        if isinstance(step_a, tuple) and isinstance(step_b, tuple):
            for key_a, key_b in zip(step_a, step_b):
                if (
                    isinstance(key_a, int)
                    and isinstance(key_b, int)
                    and key_a != key_b
                ):
                    return False  # provably disjoint constant indices
    return True


@dataclass(frozen=True)
class ArrayVal:
    dtype: str | None
    shape: Shape
    region: _Region


@dataclass(frozen=True)
class ScalarVal:
    dtype: str | None
    #: The symbolic integer value, when this scalar feeds shape math.
    dim: Dim = None


@dataclass(frozen=True)
class TupleVal:
    dims: tuple[Dim, ...]


class _Unknown:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "UNKNOWN"


UNKNOWN = _Unknown()

Value = Union[ArrayVal, ScalarVal, TupleVal, _Unknown]


def _is_float(dtype: str | None) -> bool:
    return dtype in ("float32", "float64")


def _is_int(dtype: str | None) -> bool:
    return dtype is not None and (
        dtype.startswith("int") or dtype.startswith("uint")
    )


def _promote(a: str | None, b: str | None) -> str | None:
    """Approximate numpy result-type promotion (never *under*-reports a
    width, so narrowing findings stay sound against real numpy)."""
    if a is None or b is None:
        return None
    if a == b:
        return a
    if _is_float(a) or _is_float(b):
        if _is_float(a) and _is_float(b):
            return a if _RANK[a] >= _RANK[b] else b
        floaty = a if _is_float(a) else b
        other = b if _is_float(a) else a
        if floaty == "float32" and _RANK[other] >= _RANK["int32"]:
            return "float64"  # int32+/int64 + float32 widens in numpy
        return floaty
    if a == "bool":
        return b
    if b == "bool":
        return a
    return a if _RANK[a] >= _RANK[b] else b


def _true_divide(a: str | None, b: str | None) -> str | None:
    if a is None or b is None:
        return None
    if _is_float(a) or _is_float(b):
        return _promote(a, b)
    return "float64"


def _narrows(value: str | None, target: str | None) -> bool:
    """Would storing ``value`` into ``target`` lose width or kind?"""
    if value is None or target is None or value == target:
        return False
    if _is_float(value) and (_is_int(target) or target == "bool"):
        return True
    if value != "bool" and target == "bool":
        return True
    return _RANK[value] > _RANK[target]


def _dim_shift(dim: Dim, offset: int) -> Dim:
    if dim is None:
        return None
    if isinstance(dim, int):
        return dim + offset
    return (dim[0], dim[1] + offset)


def _dims_compatible(a: Dim, b: Dim) -> bool:
    return a is None or b is None or a == b or a == 1 or b == 1


def _join_dim(a: Dim, b: Dim) -> Dim:
    return a if a == b else None


def _fmt_dim(dim: Dim) -> str:
    if dim is None:
        return "?"
    if isinstance(dim, int):
        return str(dim)
    name, offset = dim
    if offset == 0:
        return name
    return f"{name}{offset:+d}"


def _fmt_shape(shape: Shape) -> str:
    if shape is None:
        return "(?)"
    if len(shape) == 1:
        return f"({_fmt_dim(shape[0])},)"
    return "(" + ", ".join(_fmt_dim(dim) for dim in shape) + ")"


def _broadcast(a: Shape, b: Shape) -> tuple[Shape, str | None]:
    """Broadcast result shape plus a witness string when incompatible."""
    if a is None or b is None:
        return None, None
    result: list[Dim] = []
    for index in range(1, max(len(a), len(b)) + 1):
        dim_a = a[-index] if index <= len(a) else 1
        dim_b = b[-index] if index <= len(b) else 1
        if not _dims_compatible(dim_a, dim_b):
            return None, f"{_fmt_shape(a)} vs {_fmt_shape(b)}"
        if dim_a == 1:
            result.append(dim_b)
        elif dim_b == 1:
            result.append(dim_a)
        elif dim_a is not None:
            result.append(dim_a)
        else:
            result.append(dim_b)
    result.reverse()
    return tuple(result), None


# ----------------------------------------------------------------------
# module-level context shared by every kernel in a file
# ----------------------------------------------------------------------


def _module_constants(tree: ast.Module) -> dict[str, ScalarVal]:
    """Top-level numeric constants (``_DEAD_COUNT = 0.5`` …)."""
    consts: dict[str, ScalarVal] = {}
    for stmt in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        if value is None:
            continue
        scalar = _constant_scalar(value)
        if scalar is None:
            continue
        for target in targets:
            if isinstance(target, ast.Name):
                consts[target.id] = scalar
    return consts


def _constant_scalar(node: ast.expr) -> ScalarVal | None:
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return ScalarVal("bool")
        if isinstance(node.value, int):
            return ScalarVal("int64", node.value)
        if isinstance(node.value, float):
            return ScalarVal("float64")
        return None
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "float"
    ):
        return ScalarVal("float64")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _constant_scalar(node.operand)
        if inner is not None and isinstance(inner.dim, int):
            return ScalarVal(inner.dtype, -inner.dim)
        return inner
    return None


def _toplevel_defs(tree: ast.Module) -> tuple[frozenset[str], frozenset[str]]:
    functions: set[str] = set()
    classes: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.add(stmt.name)
        elif isinstance(stmt, ast.ClassDef):
            classes.add(stmt.name)
    return frozenset(functions), frozenset(classes)


# ----------------------------------------------------------------------
# nopython-subset scan (NUM004 extraction half)
# ----------------------------------------------------------------------


_FlagFn = Callable[[ast.AST, str], None]


def _nopython_scan(
    ctx: FileContext,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    local_kernels: Mapping[str, ParsedKernelSpec],
) -> tuple[list[NumericIssue], list[KernelCall]]:
    issues: list[NumericIssue] = []
    unresolved: list[KernelCall] = []
    functions, classes = _toplevel_defs(ctx.tree)

    raise_calls: set[int] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Raise) and isinstance(node.exc, ast.Call):
            raise_calls.add(id(node.exc))

    def flag(node: ast.AST, detail: str) -> None:
        issues.append(
            NumericIssue(
                kind="nopython",
                lineno=getattr(node, "lineno", fn.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                detail=detail,
            )
        )

    # Scan only the *body*: the decorator list (the @kernel spec itself,
    # a dict display) and argument defaults run at module import time,
    # outside the compiled region.
    stack: list[ast.AST] = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            flag(node, "closure/nested function (no closures in nopython)")
            continue  # do not descend into the nested scope
        elif isinstance(node, (ast.Dict, ast.DictComp, ast.Set, ast.SetComp)):
            flag(node, "builds a dict or set (boxed objects)")
        elif isinstance(node, ast.List):
            for element in node.elts:
                if isinstance(
                    element,
                    (ast.List, ast.Tuple, ast.Dict, ast.Set, ast.ListComp),
                ):
                    flag(node, "list of container objects")
                    break
        elif isinstance(node, ast.ListComp):
            if isinstance(
                node.elt,
                (ast.List, ast.Tuple, ast.Dict, ast.Set, ast.ListComp),
            ):
                flag(node, "comprehension building container elements")
        elif isinstance(node, ast.Try):
            flag(node, "try/except (exception unwinding is object-mode)")
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            flag(node, "context manager (object protocol)")
        elif isinstance(node, (ast.Yield, ast.YieldFrom, ast.Await)):
            flag(node, "generator/async construct")
        elif isinstance(node, (ast.Global, ast.Nonlocal)):
            flag(node, "rebinds module/enclosing state")
        elif isinstance(node, ast.Call):
            if any(isinstance(arg, ast.Starred) for arg in node.args) or any(
                keyword.arg is None for keyword in node.keywords
            ):
                flag(node, "dynamic argument unpacking")
            if id(node) not in raise_calls:
                _classify_call(
                    ctx,
                    node,
                    fn.name,
                    local_kernels,
                    functions,
                    classes,
                    flag,
                    unresolved,
                )
        stack.extend(ast.iter_child_nodes(node))
    return issues, unresolved


def _classify_call(
    ctx: FileContext,
    node: ast.Call,
    fn_name: str,
    local_kernels: Mapping[str, ParsedKernelSpec],
    functions: frozenset[str],
    classes: frozenset[str],
    flag: "_FlagFn",
    unresolved: list[KernelCall],
) -> None:
    resolved = ctx.resolve(node.func)
    if resolved is not None:
        head = resolved.split(".", 1)[0]
        if head in ("numpy", "math"):
            return
        if head == "repro":
            unresolved.append(
                KernelCall(
                    ref=f"abs:{resolved}",
                    lineno=node.lineno,
                    col=node.col_offset + 1,
                )
            )
            return
        flag(node, f"calls {resolved} (outside the nopython universe)")
        return
    if isinstance(node.func, ast.Name):
        name = node.func.id
        if name in _SAFE_BUILTINS or name == fn_name:
            return
        if name in local_kernels:
            return
        if name in functions:
            flag(node, f"calls non-kernel helper {name}()")
        elif name in classes:
            flag(node, f"instantiates class {name} (boxed object)")
        else:
            flag(node, f"untyped Python call through {name}")
        return
    if isinstance(node.func, ast.Attribute):
        if node.func.attr not in _SAFE_METHODS:
            flag(node, f"calls unsupported method .{node.func.attr}()")
        return
    flag(node, "call through a computed expression")


# ----------------------------------------------------------------------
# the abstract interpreter (NUM001–NUM003 extraction)
# ----------------------------------------------------------------------


class _KernelInterpreter:
    """One pass over one kernel body with the dtype/shape/region lattice."""

    def __init__(
        self,
        ctx: FileContext,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        spec: ParsedKernelSpec,
        local_kernels: Mapping[str, ParsedKernelSpec],
        consts: Mapping[str, ScalarVal],
    ) -> None:
        self.ctx = ctx
        self.fn = fn
        self.local_kernels = local_kernels
        self.consts = consts
        self._seen: set[tuple[str, int, int, str]] = set()
        self.issues: list[NumericIssue] = []
        self._next_base = 0
        self.env: dict[str, Value] = {}
        #: in-place writes so far: (name written through, region, line).
        self.writes: list[tuple[str, _Region, int]] = []
        for arg in [*fn.args.posonlyargs, *fn.args.args]:
            declared = spec.arrays.get(arg.arg)
            if declared is None:
                self.env[arg.arg] = UNKNOWN
            else:
                dtype, dims = declared
                self.env[arg.arg] = ArrayVal(
                    dtype=dtype, shape=dims, region=self._fresh()
                )

    # -- plumbing ------------------------------------------------------

    def _fresh(self) -> _Region:
        self._next_base += 1
        return _Region(self._next_base, ())

    def _issue(self, kind: str, node: ast.AST, detail: str) -> None:
        lineno = getattr(node, "lineno", self.fn.lineno)
        col = getattr(node, "col_offset", 0) + 1
        key = (kind, lineno, col, detail)
        if key in self._seen:
            return
        self._seen.add(key)
        self.issues.append(
            NumericIssue(kind=kind, lineno=lineno, col=col, detail=detail)
        )

    def run(self) -> list[NumericIssue]:
        self._exec_body(self.fn.body)
        return self.issues

    # -- statements ----------------------------------------------------

    def _exec_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._exec(stmt)

    def _exec(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value)
            for target in stmt.targets:
                self._assign(target, value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign(stmt.target, self._eval(stmt.value), stmt)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._eval(stmt.value)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test)
            before = dict(self.env)
            self._exec_body(stmt.body)
            taken = self.env
            self.env = dict(before)
            self._exec_body(stmt.orelse)
            self.env = _join_env(taken, self.env, self._fresh)
        elif isinstance(stmt, (ast.While, ast.For)):
            self._exec_loop(stmt)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                for arg in getattr(stmt.exc, "args", []):
                    if isinstance(arg, ast.expr):
                        self._eval(arg)
        elif isinstance(stmt, ast.Try):
            self._exec_body(stmt.body)
            for handler in stmt.handlers:
                self._exec_body(handler.body)
            self._exec_body(stmt.orelse)
            self._exec_body(stmt.finalbody)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._exec_body(stmt.body)
        # Pass/Break/Continue/Assert/etc.: no lattice effect.

    def _exec_loop(self, stmt: ast.While | ast.For) -> None:
        if isinstance(stmt, ast.While):
            self._eval(stmt.test)
        else:
            iterable = self._eval(stmt.iter)
            self._bind_loop_target(stmt.target, stmt.iter, iterable)
        before = dict(self.env)
        self._exec_body(stmt.body)
        self.env = _join_env(before, self.env, self._fresh)
        self._exec_body(stmt.body)  # second pass over the joined state
        self.env = _join_env(before, self.env, self._fresh)
        self._exec_body(stmt.orelse)

    def _bind_loop_target(
        self, target: ast.expr, iter_node: ast.expr, iterable: Value
    ) -> None:
        if isinstance(target, ast.Name):
            if (
                isinstance(iter_node, ast.Call)
                and isinstance(iter_node.func, ast.Name)
                and iter_node.func.id == "range"
            ):
                self.env[target.id] = ScalarVal("int64")
            elif isinstance(iterable, ArrayVal):
                shape = (
                    iterable.shape[1:]
                    if iterable.shape is not None and len(iterable.shape) > 1
                    else ()
                )
                if iterable.shape is not None and len(iterable.shape) == 1:
                    self.env[target.id] = ScalarVal(iterable.dtype)
                else:
                    self.env[target.id] = ArrayVal(
                        iterable.dtype, shape, self._fresh()
                    )
            else:
                self.env[target.id] = UNKNOWN
        elif isinstance(target, ast.Tuple):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env[element.id] = UNKNOWN

    def _assign(self, target: ast.expr, value: Value, stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Tuple):
            dims: tuple[Dim, ...] | None = None
            if isinstance(value, TupleVal):
                dims = value.dims
            elif isinstance(value, ArrayVal) and value.shape is not None:
                dims = value.shape  # unpacking a shape-like value
            for index, element in enumerate(target.elts):
                if not isinstance(element, ast.Name):
                    continue
                if dims is not None and index < len(dims):
                    self.env[element.id] = ScalarVal("int64", dims[index])
                else:
                    self.env[element.id] = UNKNOWN
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, value, stmt)
        # attribute stores don't occur in kernels; ignore conservatively

    def _subscript_store(
        self, target: ast.Subscript, value: Value, stmt: ast.stmt
    ) -> None:
        base = self._eval(target.value, record_read=False)
        slice_shape, step = self._eval_index(target, base)
        if not isinstance(base, ArrayVal):
            return
        if isinstance(target.value, ast.Name):
            self.writes.append(
                (target.value.id, base.region.child(step), stmt.lineno)
            )
        value_dtype = _value_dtype(value)
        if _narrows(value_dtype, base.dtype):
            self._issue(
                "narrowing",
                stmt,
                f"stores {value_dtype} values into {base.dtype} array "
                f"{_expr_text(target.value)} — silent dtype narrowing",
            )
        value_shape = value.shape if isinstance(value, ArrayVal) else None
        _, witness = _broadcast(slice_shape, value_shape)
        if witness is not None:
            self._issue(
                "shape",
                stmt,
                f"assignment into {_expr_text(target.value)} cannot "
                f"broadcast: {witness}",
            )

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        value = self._eval(stmt.value)
        if isinstance(stmt.target, ast.Name):
            current = self.env.get(stmt.target.id, UNKNOWN)
            if isinstance(current, ArrayVal):
                value_dtype = _value_dtype(value)
                if isinstance(stmt.op, ast.Div):
                    result = _true_divide(current.dtype, value_dtype)
                else:
                    result = _promote(current.dtype, value_dtype)
                self.writes.append(
                    (stmt.target.id, current.region, stmt.lineno)
                )
                if _narrows(result, current.dtype):
                    self._issue(
                        "narrowing",
                        stmt,
                        f"in-place op narrows {result} back into "
                        f"{current.dtype} array {stmt.target.id}",
                    )
                value_shape = (
                    value.shape if isinstance(value, ArrayVal) else None
                )
                _, witness = _broadcast(current.shape, value_shape)
                if witness is not None:
                    self._issue(
                        "shape",
                        stmt,
                        f"in-place op on {stmt.target.id} cannot "
                        f"broadcast: {witness}",
                    )
            elif isinstance(current, ScalarVal):
                self.env[stmt.target.id] = ScalarVal(
                    _promote(current.dtype, _value_dtype(value))
                )
        elif isinstance(stmt.target, ast.Subscript):
            base = self._eval(stmt.target.value, record_read=False)
            self._eval_index(stmt.target, base)
            if isinstance(base, ArrayVal) and isinstance(
                stmt.target.value, ast.Name
            ):
                self.writes.append(
                    (
                        stmt.target.value.id,
                        base.region.child("?"),
                        stmt.lineno,
                    )
                )

    # -- expressions ---------------------------------------------------

    def _eval(self, node: ast.expr, record_read: bool = True) -> Value:
        if isinstance(node, ast.Name):
            value = self.env.get(node.id)
            if value is None:
                value = self.consts.get(node.id, UNKNOWN)
            if record_read and isinstance(value, ArrayVal):
                self._check_read(node, value)
            return value
        if isinstance(node, ast.Constant):
            scalar = _constant_scalar(node)
            return scalar if scalar is not None else UNKNOWN
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self._eval_unary(node)
        if isinstance(node, ast.Compare):
            return self._eval_compare(node)
        if isinstance(node, ast.BoolOp):
            for operand in node.values:
                self._eval(operand)
            return UNKNOWN
        if isinstance(node, (ast.Tuple, ast.List)):
            dims: list[Dim] = []
            scalar_only = True
            for element in node.elts:
                value = self._eval(element)
                if isinstance(value, ScalarVal):
                    dims.append(value.dim)
                else:
                    scalar_only = False
            return TupleVal(tuple(dims)) if scalar_only else UNKNOWN
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node)
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node)
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self._eval(generator.iter)
            return UNKNOWN
        if isinstance(node, ast.IfExp):
            self._eval(node.test)
            first = self._eval(node.body)
            second = self._eval(node.orelse)
            return first if first == second else UNKNOWN
        return UNKNOWN

    def _check_read(self, node: ast.Name, value: ArrayVal) -> None:
        binding = self.env.get(node.id)
        for written_name, region, line in self.writes:
            if written_name == node.id:
                continue  # reading what you wrote, through the same name
            if not _regions_overlap(region, value.region):
                continue
            writer = self.env.get(written_name)
            if (
                isinstance(writer, ArrayVal)
                and isinstance(binding, ArrayVal)
                and writer.region == binding.region
            ):
                continue  # two names deliberately bound to one array
            self._issue(
                "alias",
                node,
                f"read of {node.id} observes the in-place write to "
                f"{written_name} on line {line} through an overlapping "
                "view of the same buffer",
            )
            return

    def _eval_binop(self, node: ast.BinOp) -> Value:
        left = self._eval(node.left)
        right = self._eval(node.right)
        if isinstance(left, ArrayVal) or isinstance(right, ArrayVal):
            left_dtype = _value_dtype(left)
            right_dtype = _value_dtype(right)
            if isinstance(node.op, ast.Div):
                dtype = _true_divide(left_dtype, right_dtype)
            elif isinstance(node.op, (ast.BitAnd, ast.BitOr, ast.BitXor)):
                dtype = _promote(left_dtype, right_dtype)
            else:
                dtype = _promote(left_dtype, right_dtype)
            left_shape = left.shape if isinstance(left, ArrayVal) else ()
            right_shape = right.shape if isinstance(right, ArrayVal) else ()
            shape, witness = _broadcast(left_shape, right_shape)
            if witness is not None:
                self._issue(
                    "shape",
                    node,
                    f"operands cannot broadcast: {witness}",
                )
            return ArrayVal(dtype, shape, self._fresh())
        if isinstance(left, ScalarVal) and isinstance(right, ScalarVal):
            dim: Dim = None
            if isinstance(node.op, ast.Add):
                dim = _dim_add(left.dim, right.dim)
            elif isinstance(node.op, ast.Sub):
                dim = _dim_sub(left.dim, right.dim)
            if isinstance(node.op, ast.Div):
                return ScalarVal(_true_divide(left.dtype, right.dtype))
            return ScalarVal(_promote(left.dtype, right.dtype), dim)
        return UNKNOWN

    def _eval_unary(self, node: ast.UnaryOp) -> Value:
        operand = self._eval(node.operand)
        if isinstance(node.op, ast.Not):
            return ScalarVal("bool")
        if isinstance(operand, ArrayVal):
            return ArrayVal(operand.dtype, operand.shape, self._fresh())
        if isinstance(operand, ScalarVal):
            if isinstance(node.op, ast.USub) and isinstance(
                operand.dim, int
            ):
                return ScalarVal(operand.dtype, -operand.dim)
            return ScalarVal(operand.dtype)
        return UNKNOWN

    def _eval_compare(self, node: ast.Compare) -> Value:
        values = [self._eval(node.left)]
        values.extend(self._eval(cmp) for cmp in node.comparators)
        arrays = [v for v in values if isinstance(v, ArrayVal)]
        if not arrays:
            return ScalarVal("bool")
        shape: Shape = arrays[0].shape
        for index in range(len(values) - 1):
            left, right = values[index], values[index + 1]
            left_shape = left.shape if isinstance(left, ArrayVal) else ()
            right_shape = right.shape if isinstance(right, ArrayVal) else ()
            shape, witness = _broadcast(left_shape, right_shape)
            if witness is not None:
                self._issue(
                    "shape",
                    node,
                    f"comparison operands cannot broadcast: {witness}",
                )
        return ArrayVal("bool", shape, self._fresh())

    # -- subscripts ----------------------------------------------------

    def _eval_subscript(self, node: ast.Subscript) -> Value:
        # The base is evaluated without the bare-name read check: the
        # subscript narrows what is actually read, so the check runs
        # against the *sub*-region below (else ``m[:, 1]`` after a write
        # to ``m[:, 0]`` would count as reading all of ``m``).
        base = self._eval(node.value, record_read=False)
        if isinstance(base, TupleVal):
            index = node.slice
            if isinstance(index, ast.Constant) and isinstance(
                index.value, int
            ):
                if 0 <= index.value < len(base.dims):
                    return ScalarVal("int64", base.dims[index.value])
            return ScalarVal("int64")
        shape, step = self._eval_index(node, base)
        if not isinstance(base, ArrayVal):
            return UNKNOWN
        if step == "advanced":
            # Fancy indexing reads data-dependent positions — check
            # against the whole base, return a fresh copy.
            if isinstance(node.value, ast.Name):
                self._check_read(node.value, base)
            return ArrayVal(base.dtype, shape, self._fresh())
        view = ArrayVal(
            base.dtype,
            shape,
            base.region.child(step) if isinstance(step, tuple) else
            base.region.child("*"),
        )
        if isinstance(node.value, ast.Name):
            self._check_read(node.value, view)
        return view

    def _eval_index(
        self, node: ast.Subscript, base: Value
    ) -> tuple[Shape, object]:
        """Result shape and region step for a subscript expression.

        The step is a tuple of per-axis keys for basic indexing, or the
        string ``"advanced"`` when fancy indexing copies the data.
        """
        index = node.slice
        elements = (
            list(index.elts) if isinstance(index, ast.Tuple) else [index]
        )
        base_shape = base.shape if isinstance(base, ArrayVal) else None
        keys: list[object] = []
        result: list[Dim] = []
        advanced = False
        axis = 0
        rank = len(base_shape) if base_shape is not None else None
        explicit = sum(
            1
            for element in elements
            if not (
                isinstance(element, ast.Constant) and element.value is None
            )
        )
        if rank is not None and explicit > rank:
            self._issue(
                "shape",
                node,
                f"{explicit} indices into a rank-{rank} array "
                f"{_fmt_shape(base_shape)}",
            )
        for element in elements:
            if isinstance(element, ast.Constant) and element.value is None:
                result.append(1)  # np.newaxis
                continue
            if isinstance(element, ast.Slice):
                for bound in (element.lower, element.upper, element.step):
                    if bound is not None:
                        self._eval(bound)
                full = (
                    element.lower is None
                    and element.upper is None
                    and element.step is None
                )
                keys.append(":")
                if base_shape is not None and axis < len(base_shape):
                    result.append(base_shape[axis] if full else None)
                else:
                    result.append(None)
                axis += 1
                continue
            value = self._eval(element)
            if isinstance(value, ArrayVal):
                advanced = True
                index_shape = value.shape
                if value.dtype == "bool":
                    if (
                        index_shape is not None
                        and base_shape is not None
                        and len(index_shape) == len(base_shape)
                    ):
                        result[:] = [None]
                        axis = len(base_shape)
                    else:
                        result.append(None)
                        axis += 1
                else:
                    if index_shape is not None:
                        result.extend(index_shape)
                    else:
                        result.append(None)
                    axis += 1
                keys.append("?")
                continue
            if isinstance(element, ast.Constant) and isinstance(
                element.value, int
            ):
                keys.append(element.value)
            else:
                keys.append("?")
            axis += 1  # integer index consumes the axis, adds no dim
        if base_shape is not None:
            result.extend(base_shape[axis:])
            for _ in range(len(base_shape) - axis):
                keys.append(":")
        shape: Shape = tuple(result) if base_shape is not None else None
        if advanced:
            return shape, "advanced"
        return shape, tuple(keys)

    # -- attributes & calls --------------------------------------------

    def _eval_attribute(self, node: ast.Attribute) -> Value:
        value = self._eval(node.value)
        if isinstance(value, ArrayVal):
            if node.attr == "shape":
                if value.shape is not None:
                    return TupleVal(value.shape)
                return UNKNOWN
            if node.attr in ("ndim", "size"):
                return ScalarVal("int64")
        return UNKNOWN

    def _eval_call(self, node: ast.Call) -> Value:
        resolved = self.ctx.resolve(node.func)
        if resolved is not None and resolved.startswith("numpy."):
            return self._numpy_call(resolved[len("numpy.") :], node)
        args = [
            self._eval(arg)
            for arg in node.args
            if not isinstance(arg, ast.Starred)
        ]
        for keyword in node.keywords:
            self._eval(keyword.value)
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "len" and args and isinstance(args[0], ArrayVal):
                shape = args[0].shape
                return ScalarVal(
                    "int64", shape[0] if shape else None
                )
            if func.id in ("int", "round"):
                return ScalarVal("int64")
            if func.id == "float":
                return ScalarVal("float64")
            if func.id == "bool":
                return ScalarVal("bool")
            if func.id in self.local_kernels:
                return self._kernel_call(func.id, args)
            return UNKNOWN
        if isinstance(func, ast.Attribute):
            # A method call reads its receiver (``.fill`` writes it and
            # is recorded in _method_call instead).
            receiver = self._eval(
                func.value, record_read=func.attr != "fill"
            )
            return self._method_call(func, receiver, node)
        return UNKNOWN

    def _method_call(
        self, func: ast.Attribute, receiver: Value, node: ast.Call
    ) -> Value:
        if not isinstance(receiver, ArrayVal):
            return UNKNOWN
        if func.attr == "copy":
            return ArrayVal(receiver.dtype, receiver.shape, self._fresh())
        if func.attr == "ravel":
            length: Dim = None
            if receiver.shape is not None and len(receiver.shape) == 1:
                length = receiver.shape[0]
            return ArrayVal(
                receiver.dtype, (length,), receiver.region.child("*")
            )
        if func.attr == "reshape":
            dims = [self._eval(arg) for arg in node.args]
            shape: Shape = None
            if len(dims) == 1 and isinstance(dims[0], TupleVal):
                shape = dims[0].dims
            elif dims and all(isinstance(d, ScalarVal) for d in dims):
                shape = tuple(
                    d.dim for d in dims if isinstance(d, ScalarVal)
                )
            return ArrayVal(
                receiver.dtype, shape, receiver.region.child("*")
            )
        if func.attr == "astype":
            dtype = self._dtype_argument(node.args[0]) if node.args else None
            return ArrayVal(dtype, receiver.shape, self._fresh())
        if func.attr in ("sum", "min", "max"):
            return ScalarVal(receiver.dtype)
        if func.attr in ("any", "all"):
            return ScalarVal("bool")
        if func.attr == "fill" and isinstance(func.value, ast.Name):
            self.writes.append(
                (func.value.id, receiver.region, node.lineno)
            )
            return UNKNOWN
        return UNKNOWN

    def _kernel_call(self, name: str, args: list[Value]) -> Value:
        spec = self.local_kernels[name]
        if spec.returns is None:
            return UNKNOWN
        bindings: dict[str, Dim] = {}
        for (param, declared), actual in zip(spec.arrays.items(), args):
            _, declared_dims = declared
            if declared_dims is None or not isinstance(actual, ArrayVal):
                continue
            if actual.shape is None or len(actual.shape) != len(
                declared_dims
            ):
                continue
            for declared_dim, actual_dim in zip(declared_dims, actual.shape):
                if isinstance(declared_dim, tuple):
                    bindings.setdefault(
                        declared_dim[0],
                        _dim_shift(actual_dim, -declared_dim[1]),
                    )
        dtype, dims = spec.returns
        shape: Shape = None
        if dims is not None:
            resolved: list[Dim] = []
            for dim in dims:
                if isinstance(dim, tuple):
                    resolved.append(
                        _dim_shift(bindings.get(dim[0]), dim[1])
                    )
                else:
                    resolved.append(dim)
            shape = tuple(resolved)
        return ArrayVal(dtype, shape, self._fresh())

    # -- numpy call table ----------------------------------------------

    def _dtype_argument(self, node: ast.expr) -> str | None:
        resolved = self.ctx.resolve(node)
        if resolved is not None and resolved.startswith("numpy."):
            return _DTYPE_NAMES.get(resolved[len("numpy.") :])
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return _DTYPE_NAMES.get(node.value)
        if isinstance(node, ast.Name):
            return _DTYPE_NAMES.get(node.id)
        return None

    def _numpy_call(self, tail: str, node: ast.Call) -> Value:
        args = [
            self._eval(arg)
            for arg in node.args
            if not isinstance(arg, ast.Starred)
        ]
        keywords: dict[str, Value] = {}
        keyword_nodes: dict[str, ast.expr] = {}
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            keyword_nodes[keyword.arg] = keyword.value
            if keyword.arg == "dtype":
                keywords["dtype"] = UNKNOWN
            else:
                keywords[keyword.arg] = self._eval(keyword.value)
        dtype_kw = (
            self._dtype_argument(keyword_nodes["dtype"])
            if "dtype" in keyword_nodes
            else None
        )

        if tail in _BINARY_UFUNCS:
            return self._binary_ufunc(tail, node, args, keywords, keyword_nodes)
        if tail in _UNARY_UFUNCS:
            operand = args[0] if args else UNKNOWN
            dtype = _value_dtype(operand)
            if tail in ("sqrt", "exp", "log"):
                dtype = _true_divide(dtype, dtype)
            shape = operand.shape if isinstance(operand, ArrayVal) else None
            result = ArrayVal(dtype, shape, self._fresh())
            return self._apply_out(node, args, keywords, keyword_nodes, result)
        if tail == "copyto":
            if len(args) >= 2:
                self._write_into(node, args[0], args[1:], node.args[0])
            return UNKNOWN
        if tail == "bincount":
            return self._bincount(node, args, keywords)
        if tail == "repeat":
            dtype = _value_dtype(args[0]) if args else None
            return ArrayVal(dtype, (None,), self._fresh())
        if tail == "arange":
            scalars = [a for a in args if isinstance(a, ScalarVal)]
            dim = scalars[0].dim if len(scalars) == 1 else None
            dtype = dtype_kw or (
                "int64"
                if all(not _is_float(s.dtype) for s in scalars)
                else "float64"
            )
            return ArrayVal(dtype, (dim,), self._fresh())
        if tail in ("empty", "zeros", "ones", "full"):
            shape = _shape_argument(args[0]) if args else None
            if tail == "full":
                fill = args[1] if len(args) > 1 else UNKNOWN
                dtype = dtype_kw or _value_dtype(fill)
            else:
                dtype = dtype_kw or "float64"
            return ArrayVal(dtype, shape, self._fresh())
        if tail in ("asarray", "ascontiguousarray", "array"):
            source = args[0] if args else UNKNOWN
            if isinstance(source, ArrayVal):
                return ArrayVal(
                    dtype_kw or source.dtype, source.shape, self._fresh()
                )
            return ArrayVal(dtype_kw, None, self._fresh())
        if tail in ("sum", "amin", "amax", "min", "max", "prod"):
            return self._reduction(node, args, keywords, keyword_nodes)
        if tail == "where":
            shapes = [
                a.shape for a in args if isinstance(a, ArrayVal)
            ]
            shape = shapes[0] if shapes else None
            operands = [_value_dtype(a) for a in args[1:]]
            dtype = (
                _promote(operands[0], operands[1])
                if len(operands) == 2
                else None
            )
            return ArrayVal(dtype, shape, self._fresh())
        if tail == "unique":
            dtype = _value_dtype(args[0]) if args else None
            return ArrayVal(dtype, (None,), self._fresh())
        if tail == "isin":
            shape = args[0].shape if args and isinstance(args[0], ArrayVal) else None
            return ArrayVal("bool", shape, self._fresh())
        if tail == "append":
            dtype = _value_dtype(args[0]) if args else None
            return ArrayVal(dtype, (None,), self._fresh())
        if tail == "nonzero":
            return UNKNOWN
        return UNKNOWN

    def _binary_ufunc(
        self,
        tail: str,
        node: ast.Call,
        args: list[Value],
        keywords: dict[str, Value],
        keyword_nodes: dict[str, ast.expr],
    ) -> Value:
        left = args[0] if args else UNKNOWN
        right = args[1] if len(args) > 1 else UNKNOWN
        left_dtype = _value_dtype(left)
        right_dtype = _value_dtype(right)
        if tail in ("divide", "true_divide"):
            dtype = _true_divide(left_dtype, right_dtype)
        elif tail in _BOOL_UFUNCS:
            dtype = "bool"
        else:
            dtype = _promote(left_dtype, right_dtype)
        left_shape = left.shape if isinstance(left, ArrayVal) else ()
        right_shape = right.shape if isinstance(right, ArrayVal) else ()
        shape, witness = _broadcast(left_shape, right_shape)
        if witness is not None:
            self._issue(
                "shape",
                node,
                f"np.{tail} operands cannot broadcast: {witness}",
            )
        result = ArrayVal(dtype, shape, self._fresh())
        return self._apply_out(node, args, keywords, keyword_nodes, result)

    def _apply_out(
        self,
        node: ast.Call,
        args: list[Value],
        keywords: dict[str, Value],
        keyword_nodes: dict[str, ast.expr],
        result: ArrayVal,
    ) -> Value:
        out = keywords.get("out")
        out_node = keyword_nodes.get("out")
        if out is None and len(node.args) >= 3:
            out = args[2]
            out_node = node.args[2]
        if out is None or not isinstance(out, ArrayVal):
            return result
        inputs = args[:2]
        self._write_into(node, out, inputs, out_node)
        if _narrows(result.dtype, out.dtype):
            self._issue(
                "narrowing",
                node,
                f"ufunc result is {result.dtype} but out= targets a "
                f"{out.dtype} array — silent dtype narrowing",
            )
        _, witness = _broadcast(result.shape, out.shape)
        if witness is not None:
            self._issue(
                "shape",
                node,
                f"ufunc result cannot broadcast into out=: {witness}",
            )
        return out

    def _write_into(
        self,
        node: ast.Call,
        out: Value,
        inputs: Sequence[Value],
        out_node: ast.expr | None,
    ) -> None:
        if not isinstance(out, ArrayVal):
            return
        for value in inputs:
            if not isinstance(value, ArrayVal):
                continue
            if value.region == out.region:
                continue  # exact self-update (x op y -> x) is safe
            if _regions_overlap(value.region, out.region):
                self._issue(
                    "alias",
                    node,
                    "in-place output overlaps an input through another "
                    "view of the same buffer — the write is observed "
                    "mid-pass",
                )
        name = ""
        if isinstance(out_node, ast.Name):
            name = out_node.id
        self.writes.append((name, out.region, node.lineno))

    def _bincount(
        self, node: ast.Call, args: list[Value], keywords: dict[str, Value]
    ) -> Value:
        source = args[0] if args else UNKNOWN
        if (
            isinstance(source, ArrayVal)
            and source.shape is not None
            and len(source.shape) != 1
        ):
            self._issue(
                "shape",
                node,
                f"np.bincount input must be 1-D, got "
                f"{_fmt_shape(source.shape)}",
            )
        weights = keywords.get("weights")
        if (
            isinstance(weights, ArrayVal)
            and isinstance(source, ArrayVal)
            and weights.shape is not None
            and source.shape is not None
        ):
            _, witness = _broadcast(source.shape, weights.shape)
            if witness is not None:
                self._issue(
                    "shape",
                    node,
                    f"np.bincount weights misaligned: {witness}",
                )
        dtype = (
            "float64" if isinstance(weights, ArrayVal) or isinstance(
                weights, ScalarVal
            ) else "int64"
        )
        minlength = keywords.get("minlength")
        length: Dim = None
        if isinstance(minlength, ScalarVal):
            length = minlength.dim
        return ArrayVal(dtype, (length,), self._fresh())

    def _reduction(
        self,
        node: ast.Call,
        args: list[Value],
        keywords: dict[str, Value],
        keyword_nodes: dict[str, ast.expr],
    ) -> Value:
        source = args[0] if args else UNKNOWN
        dtype = _value_dtype(source)
        axis_node = keyword_nodes.get("axis")
        if axis_node is None and len(node.args) > 1:
            axis_node = node.args[1]
        if axis_node is None:
            return ScalarVal(dtype)
        if not isinstance(source, ArrayVal) or source.shape is None:
            return UNKNOWN
        if isinstance(axis_node, ast.Constant) and isinstance(
            axis_node.value, int
        ):
            axis = axis_node.value
            rank = len(source.shape)
            if axis >= rank or axis < -rank:
                self._issue(
                    "shape",
                    node,
                    f"reduction over axis {axis} of a rank-{rank} array "
                    f"{_fmt_shape(source.shape)}",
                )
                return UNKNOWN
            shape = tuple(
                dim
                for index, dim in enumerate(source.shape)
                if index != axis % rank
            )
            return ArrayVal(dtype, shape, self._fresh())
        return UNKNOWN


_BINARY_UFUNCS = frozenset(
    {
        "add",
        "subtract",
        "multiply",
        "divide",
        "true_divide",
        "floor_divide",
        "minimum",
        "maximum",
        "fmin",
        "fmax",
        "power",
        "mod",
        "remainder",
        "logical_and",
        "logical_or",
        "logical_xor",
        "equal",
        "not_equal",
        "greater",
        "greater_equal",
        "less",
        "less_equal",
        "bitwise_and",
        "bitwise_or",
    }
)

_BOOL_UFUNCS = frozenset(
    {
        "logical_and",
        "logical_or",
        "logical_xor",
        "equal",
        "not_equal",
        "greater",
        "greater_equal",
        "less",
        "less_equal",
    }
)

_UNARY_UFUNCS = frozenset(
    {
        "negative",
        "absolute",
        "abs",
        "sqrt",
        "exp",
        "log",
        "floor",
        "ceil",
        "rint",
        "sign",
        "logical_not",
        "invert",
    }
)


def _value_dtype(value: Value) -> str | None:
    if isinstance(value, (ArrayVal, ScalarVal)):
        return value.dtype
    return None


def _shape_argument(value: Value) -> Shape:
    if isinstance(value, TupleVal):
        return value.dims
    if isinstance(value, ScalarVal):
        return (value.dim,)
    return None


def _dim_add(a: Dim, b: Dim) -> Dim:
    if isinstance(b, int) and b is not None:
        return _dim_shift(a, b)
    if isinstance(a, int):
        return _dim_shift(b, a)
    return None


def _dim_sub(a: Dim, b: Dim) -> Dim:
    if isinstance(b, int):
        return _dim_shift(a, -b)
    return None


def _join_value(
    a: Value, b: Value, fresh: Callable[[], _Region]
) -> Value:
    if isinstance(a, ArrayVal) and isinstance(b, ArrayVal):
        if a == b:
            return a
        dtype = a.dtype if a.dtype == b.dtype else None
        shape: Shape = None
        if (
            a.shape is not None
            and b.shape is not None
            and len(a.shape) == len(b.shape)
        ):
            shape = tuple(
                _join_dim(dim_a, dim_b)
                for dim_a, dim_b in zip(a.shape, b.shape)
            )
        # Joining two distinct regions: model as a fresh buffer —
        # unsound for aliasing but conservative for false positives.
        region = a.region if a.region == b.region else fresh()
        return ArrayVal(dtype, shape, region)
    if isinstance(a, ScalarVal) and isinstance(b, ScalarVal):
        return ScalarVal(
            a.dtype if a.dtype == b.dtype else None,
            _join_dim(a.dim, b.dim),
        )
    if isinstance(a, TupleVal) and isinstance(b, TupleVal):
        if len(a.dims) == len(b.dims):
            return TupleVal(
                tuple(_join_dim(x, y) for x, y in zip(a.dims, b.dims))
            )
        return UNKNOWN
    if a is b:
        return a
    return UNKNOWN


def _join_env(
    a: Mapping[str, Value],
    b: Mapping[str, Value],
    fresh: Callable[[], _Region],
) -> dict[str, Value]:
    joined: dict[str, Value] = {}
    for name in set(a) | set(b):
        if name in a and name in b:
            joined[name] = _join_value(a[name], b[name], fresh)
        else:
            joined[name] = UNKNOWN
    return joined


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def analyze_kernels(ctx: FileContext) -> dict[str, NumericSummary]:
    """``function name -> NumericSummary`` for a file's ``@kernel`` defs.

    Returns an empty mapping for files with no registered kernels, so
    the extraction hook in :mod:`repro.checks.callgraph` costs nothing
    on the overwhelming majority of the corpus.
    """
    specs = collect_kernel_specs(ctx)
    if not specs:
        return {}
    consts = _module_constants(ctx.tree)
    summaries: dict[str, NumericSummary] = {}
    for stmt in ctx.tree.body:
        if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        spec = specs.get(stmt.name)
        if spec is None:
            continue
        nopython, unresolved = _nopython_scan(ctx, stmt, specs)
        interpreter = _KernelInterpreter(ctx, stmt, spec, specs, consts)
        issues = sorted(
            set(nopython) | set(interpreter.run()),
            key=lambda issue: (
                issue.lineno,
                issue.col,
                issue.kind,
                issue.detail,
            ),
        )
        summaries[stmt.name] = NumericSummary(
            issues=tuple(issues),
            unresolved_calls=tuple(
                sorted(
                    set(unresolved),
                    key=lambda call: (call.lineno, call.col, call.ref),
                )
            ),
        )
    return summaries


# ----------------------------------------------------------------------
# JSON-shape narrowing helpers (cache entries arrive untyped)
# ----------------------------------------------------------------------


def _int(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"expected a number, got {type(value).__name__}")
    return int(value)


def _list(value: object) -> list[object]:
    if not isinstance(value, (list, tuple)):
        raise TypeError(f"expected a list, got {type(value).__name__}")
    return list(value)


def _dict(value: object) -> dict[str, object]:
    if not isinstance(value, dict):
        raise TypeError(f"expected an object, got {type(value).__name__}")
    return value


def _expr_text(node: ast.expr) -> str:
    try:
        return ast.unparse(node)
    except ValueError:  # pragma: no cover - only on malformed trees
        return "<expr>"
