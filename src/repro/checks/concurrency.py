"""Per-coroutine concurrency facts and the whole-program interference engine.

The concurrency rules split the same way the RNG/process rules do: a
per-file *extraction* half that reads one parsed tree, and a linked
*judgement* half that runs over the whole program.

**Extraction** (:func:`analyze_function`) distils one ``async def`` into
a JSON-serialisable :class:`ConcurrencySummary` riding on the function's
:class:`~repro.checks.callgraph.FunctionSummary`:

* the shared variables read and written (``self.*`` attributes and
  module globals, keyed as in :mod:`repro.checks.cfg`);
* *stale-write candidates* — a shared read whose value may survive an
  un-locked await and feed a later write of the same variable, found by
  a latest-read-wins dataflow over the await-segmented CFG;
* *spawn sites* — ``asyncio.create_task`` / ``ensure_future`` /
  ``gather`` / ``TaskGroup.create_task`` calls, with the coroutine
  references they launch, whether the handle is discarded, and whether
  the site can fire more than once;
* *lock-discipline violations* — unbounded awaits or blocking calls
  under a held lock, and manual ``acquire()`` without a guaranteed
  ``release()`` path;
* mutations of module-level state from coroutine context.

**Judgement** (:class:`InterferenceEngine`) links the summaries through
the project call graph: coroutines reachable from a spawn site form the
*concurrent set* (they share the event loop with whatever spawned them),
and a stale-write candidate in ``F`` on variable ``v`` only becomes
SVC010 when some concurrent coroutine *also writes* ``v`` — either a
different coroutine, or ``F`` itself when two instances of ``F`` can be
in flight at once.  No spawn sites, or no second writer, means no
interleaving can lose an update, and the candidate stays silent.

Everything here is conservative in the linter's direction: opaque
receivers, unresolvable coroutine references, and sync helpers simply
contribute nothing, so they can hide a true positive but never invent
a false one (beyond the path-insensitivity documented on SVC010).
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .cfg import (
    MUTATOR_METHODS,
    ControlFlowGraph,
    _local_bindings,
    _lockish,
    _walk_own_scope,
    blocking_call_reason,
    build_cfg,
    dotted_name,
)
from .context import FileContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .project import FunctionKey, ProjectModel

__all__ = [
    "StaleWrite",
    "SpawnSite",
    "LockViolation",
    "GlobalMutation",
    "ConcurrencySummary",
    "analyze_function",
    "module_global_names",
    "lock_attribute_names",
    "InterferenceEngine",
]

#: Import-resolved spawn entry points.
_SPAWN_CALLS = frozenset(
    {"asyncio.create_task", "asyncio.ensure_future", "asyncio.gather"}
)

#: Attribute spellings of the same (``loop.create_task``, ``tg.create_task``).
_SPAWN_ATTRS = frozenset({"create_task", "ensure_future", "gather"})

#: Receiver-name fragments that mark a structured-concurrency scope
#: (``TaskGroup``/nursery): its tasks are supervised, never leaked.
_SUPERVISED_FRAGMENTS = ("tg", "group", "nursery")

#: Constructors whose result is a lock-like synchronisation primitive.
_LOCK_CONSTRUCTORS = frozenset(
    {
        "asyncio.Lock", "asyncio.Condition", "asyncio.Semaphore",
        "asyncio.BoundedSemaphore",
        "threading.Lock", "threading.RLock", "threading.Condition",
        "threading.Semaphore", "threading.BoundedSemaphore",
    }
)


# ----------------------------------------------------------------------
# summary records (all JSON round-trippable for the lint cache)
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class StaleWrite:
    """A write of ``var`` that may consume a read from before an await."""

    var: str
    read_line: int  #: the (earliest) read the value may be stale from
    lineno: int  #: the write
    col: int

    def to_json(self) -> dict[str, object]:
        return {
            "var": self.var,
            "read_line": self.read_line,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "StaleWrite":
        return cls(
            var=str(data["var"]),
            read_line=_i(data["read_line"]),
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
        )


@dataclass(frozen=True)
class SpawnSite:
    """One task-spawn expression inside a coroutine."""

    lineno: int
    col: int
    via: str  #: ``asyncio.create_task`` / ``.ensure_future()`` / …
    refs: tuple[str, ...]  #: call refs of the coroutines launched
    multi: bool  #: the site can launch more than one instance
    discarded: bool  #: no handle kept, never awaited — SVC011 material

    def to_json(self) -> dict[str, object]:
        return {
            "lineno": self.lineno,
            "col": self.col,
            "via": self.via,
            "refs": list(self.refs),
            "multi": self.multi,
            "discarded": self.discarded,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "SpawnSite":
        return cls(
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
            via=str(data["via"]),
            refs=tuple(str(r) for r in _l(data["refs"])),
            multi=bool(data["multi"]),
            discarded=bool(data["discarded"]),
        )


@dataclass(frozen=True)
class LockViolation:
    """A lock-discipline breach (SVC012)."""

    kind: str  #: ``unbounded-await`` | ``blocking-call`` | ``unreleased-acquire``
    lock: str  #: the lock expression, dotted
    what: str  #: what was awaited/called under the lock
    lineno: int
    col: int

    def to_json(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "lock": self.lock,
            "what": self.what,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "LockViolation":
        return cls(
            kind=str(data["kind"]),
            lock=str(data["lock"]),
            what=str(data["what"]),
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
        )


@dataclass(frozen=True)
class GlobalMutation:
    """A coroutine-side mutation of module-level state (SVC013)."""

    name: str
    how: str
    lineno: int
    col: int

    def to_json(self) -> dict[str, object]:
        return {
            "name": self.name,
            "how": self.how,
            "lineno": self.lineno,
            "col": self.col,
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "GlobalMutation":
        return cls(
            name=str(data["name"]),
            how=str(data["how"]),
            lineno=_i(data["lineno"]),
            col=_i(data["col"]),
        )


@dataclass(frozen=True)
class ConcurrencySummary:
    """Everything the concurrency rules know about one ``async def``."""

    awaits: int
    reads: tuple[str, ...]  #: shared variables read anywhere in the body
    writes: tuple[str, ...]  #: shared variables written anywhere
    stale_writes: tuple[StaleWrite, ...]
    spawns: tuple[SpawnSite, ...]
    lock_violations: tuple[LockViolation, ...]
    global_mutations: tuple[GlobalMutation, ...]

    def to_json(self) -> dict[str, object]:
        return {
            "awaits": self.awaits,
            "reads": list(self.reads),
            "writes": list(self.writes),
            "stale_writes": [s.to_json() for s in self.stale_writes],
            "spawns": [s.to_json() for s in self.spawns],
            "lock_violations": [v.to_json() for v in self.lock_violations],
            "global_mutations": [
                m.to_json() for m in self.global_mutations
            ],
        }

    @classmethod
    def from_json(cls, data: dict[str, object]) -> "ConcurrencySummary":
        return cls(
            awaits=_i(data["awaits"]),
            reads=tuple(str(v) for v in _l(data["reads"])),
            writes=tuple(str(v) for v in _l(data["writes"])),
            stale_writes=tuple(
                StaleWrite.from_json(_d(s)) for s in _l(data["stale_writes"])
            ),
            spawns=tuple(
                SpawnSite.from_json(_d(s)) for s in _l(data["spawns"])
            ),
            lock_violations=tuple(
                LockViolation.from_json(_d(v))
                for v in _l(data["lock_violations"])
            ),
            global_mutations=tuple(
                GlobalMutation.from_json(_d(m))
                for m in _l(data["global_mutations"])
            ),
        )


# ----------------------------------------------------------------------
# module-level extraction helpers
# ----------------------------------------------------------------------


def module_global_names(tree: ast.Module) -> frozenset[str]:
    """Names bound by module-level assignment — the candidates for
    "module global" in the shared-state model.  Imports are excluded:
    rebinding an imported module object is not state the coroutines
    share by mutation."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name):
                        names.add(leaf.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return frozenset(names - {"__all__"})


def lock_attribute_names(
    cls_node: ast.ClassDef,
    resolve: Callable[[ast.expr], str | None],
) -> frozenset[str]:
    """Attribute names a class binds to lock constructors anywhere in
    its methods (``self._gate = asyncio.Lock()`` → ``{"_gate"}``) —
    extra evidence for :func:`repro.checks.cfg.build_cfg` beyond the
    name heuristic."""
    names: set[str] = set()
    for node in ast.walk(cls_node):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        resolved = resolve(value.func)
        if resolved not in _LOCK_CONSTRUCTORS:
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                names.add(target.attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)
    return frozenset(names)


# ----------------------------------------------------------------------
# per-function analysis
# ----------------------------------------------------------------------


def analyze_function(
    ctx: FileContext,
    fn: ast.AsyncFunctionDef,
    *,
    module_globals: frozenset[str] = frozenset(),
    lock_names: frozenset[str] = frozenset(),
) -> ConcurrencySummary:
    """Distil one ``async def`` into its :class:`ConcurrencySummary`."""
    cfg = build_cfg(
        fn,
        resolve=ctx.resolve,
        module_globals=module_globals,
        lock_names=lock_names,
        blocking_call=lambda node: blocking_call_reason(ctx.resolve, node),
    )
    violations = list(_cfg_lock_violations(cfg))
    violations.extend(_bare_acquires(fn, lock_names))
    return ConcurrencySummary(
        awaits=cfg.await_count,
        reads=tuple(
            sorted({op.var for op in cfg.all_ops() if op.kind == "read"})
        ),
        writes=tuple(
            sorted({op.var for op in cfg.all_ops() if op.kind == "write"})
        ),
        stale_writes=tuple(_stale_writes(cfg)),
        spawns=tuple(_scan_spawns(fn, ctx.resolve)),
        lock_violations=tuple(
            sorted(violations, key=lambda v: (v.lineno, v.col, v.kind))
        ),
        global_mutations=tuple(_global_mutations(fn, module_globals)),
    )


# -- stale-write dataflow ----------------------------------------------

#: Per-variable fact: the set of reads whose value may be live here,
#: each tagged with whether an un-locked await separated it from now.
_VarState = dict[str, frozenset[tuple[int, bool]]]


def _stale_writes(cfg: ControlFlowGraph) -> list[StaleWrite]:
    """Latest-read-wins dataflow over the await-segmented CFG.

    A *read* of ``v`` replaces everything known about ``v`` (the newest
    read dominates — re-reading after the await is exactly the fix);
    an *await with no lock held* promotes every live read to stale;
    a *write* of ``v`` fires a candidate if any promoted read is live,
    then clears ``v``.  The join is set union, so any path with a
    surviving pre-await read reports.
    """
    findings: set[tuple[str, int, int, int]] = set()
    in_states: dict[int, _VarState] = {cfg.entry: {}}
    worklist: list[int] = [cfg.entry]
    while worklist:
        index = worklist.pop()
        state: dict[str, set[tuple[int, bool]]] = {
            var: set(pairs) for var, pairs in in_states[index].items()
        }
        for op in cfg.blocks[index].ops:
            if op.kind == "read":
                state[op.var] = {(op.lineno, False)}
            elif op.kind == "await" and not op.locks:
                for var, pairs in state.items():
                    state[var] = {(line, True) for line, _flag in pairs}
            elif op.kind == "write":
                stale = sorted(
                    line
                    for line, awaited in state.get(op.var, set())
                    if awaited
                )
                if stale:
                    findings.add((op.var, stale[0], op.lineno, op.col))
                state[op.var] = set()
        out: _VarState = {
            var: frozenset(pairs) for var, pairs in state.items() if pairs
        }
        for successor in cfg.blocks[index].succs:
            known = in_states.get(successor)
            merged = _join(known, out)
            if merged != known:
                in_states[successor] = merged
                worklist.append(successor)
    # Several paths can blame distinct reads for one write; keep the
    # earliest read per write site so reports are deterministic.
    per_write: dict[tuple[str, int, int], int] = {}
    for var, read_line, lineno, col in findings:
        key = (var, lineno, col)
        per_write[key] = min(per_write.get(key, read_line), read_line)
    return [
        StaleWrite(var=var, read_line=read, lineno=lineno, col=col)
        for (var, lineno, col), read in sorted(
            per_write.items(), key=lambda item: (item[0][1], item[0][2])
        )
    ]


def _join(known: _VarState | None, incoming: _VarState) -> _VarState:
    if known is None:
        return dict(incoming)
    merged = dict(known)
    for var, pairs in incoming.items():
        merged[var] = merged.get(var, frozenset()) | pairs
    return merged


# -- lock discipline ---------------------------------------------------


def _cfg_lock_violations(cfg: ControlFlowGraph) -> Iterator[LockViolation]:
    for op in cfg.all_ops():
        if not op.locks:
            continue
        if op.kind == "await" and op.unbounded:
            yield LockViolation(
                kind="unbounded-await",
                lock=op.locks[-1],
                what=op.unbounded,
                lineno=op.lineno,
                col=op.col,
            )
        elif op.kind == "call" and op.blocking:
            yield LockViolation(
                kind="blocking-call",
                lock=op.locks[-1],
                what=op.blocking,
                lineno=op.lineno,
                col=op.col,
            )


def _bare_acquires(
    fn: ast.AsyncFunctionDef, lock_names: frozenset[str]
) -> Iterator[LockViolation]:
    """Manual ``await lock.acquire()`` without a guaranteed release.

    Accepted shapes: the acquire sits inside a ``try`` whose ``finally``
    releases the same lock, or is immediately followed by such a
    ``try``.  Everything else — including release on the happy path
    only — is a violation: an exception between acquire and release
    deadlocks every other waiter."""

    def visit(
        stmts: list[ast.stmt], released: frozenset[str]
    ) -> Iterator[LockViolation]:
        for position, stmt in enumerate(stmts):
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            for lock, node in _acquires_in_stmt(stmt, lock_names):
                follower = (
                    stmts[position + 1] if position + 1 < len(stmts) else None
                )
                guarded = lock in released or (
                    isinstance(follower, ast.Try)
                    and lock in _finally_released(follower)
                )
                if not guarded:
                    yield LockViolation(
                        kind="unreleased-acquire",
                        lock=lock,
                        what="no release on every path",
                        lineno=node.lineno,
                        col=node.col_offset + 1,
                    )
            if isinstance(stmt, ast.Try):
                inner = released | _finally_released(stmt)
                yield from visit(stmt.body, inner)
                yield from visit(stmt.orelse, inner)
                for handler in stmt.handlers:
                    yield from visit(handler.body, inner)
                yield from visit(stmt.finalbody, released)
            else:
                for body in _stmt_bodies(stmt):
                    yield from visit(body, released)

    yield from visit(fn.body, frozenset())


def _acquires_in_stmt(
    stmt: ast.stmt, lock_names: frozenset[str]
) -> Iterator[tuple[str, ast.Call]]:
    for root in _stmt_exprs(stmt):
        for node in ast.walk(root):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
            ):
                lock = dotted_name(node.func.value)
                if _lockish(lock, lock_names):
                    yield (lock, node)


def _finally_released(stmt: ast.Try) -> frozenset[str]:
    released: set[str] = set()
    for node in ast.walk(ast.Module(body=stmt.finalbody, type_ignores=[])):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "release"
        ):
            lock = dotted_name(node.func.value)
            if lock:
                released.add(lock)
    return frozenset(released)


def _stmt_bodies(stmt: ast.stmt) -> Iterator[list[ast.stmt]]:
    for name in ("body", "orelse", "finalbody"):
        body = getattr(stmt, name, None)
        if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
            yield body
    for handler in getattr(stmt, "handlers", []) or []:
        yield handler.body
    for case in getattr(stmt, "cases", []) or []:
        yield case.body


def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.expr]:
    """The statement's *own* expressions, not those of nested statements."""
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child
        elif isinstance(child, ast.withitem):
            yield child.context_expr
            if child.optional_vars is not None:
                yield child.optional_vars


# -- spawn-site scan ---------------------------------------------------


def _scan_spawns(
    fn: ast.AsyncFunctionDef,
    resolve: Callable[[ast.expr], str | None],
) -> Iterator[SpawnSite]:
    def visit(stmts: list[ast.stmt], in_loop: bool) -> Iterator[SpawnSite]:
        for stmt in stmts:
            if isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            yield from _stmt_spawns(stmt, resolve, in_loop)
            inner_loop = in_loop or isinstance(
                stmt, (ast.For, ast.AsyncFor, ast.While)
            )
            for body in _stmt_bodies(stmt):
                yield from visit(body, inner_loop)

    yield from visit(fn.body, in_loop=False)


def _stmt_spawns(
    stmt: ast.stmt,
    resolve: Callable[[ast.expr], str | None],
    in_loop: bool,
) -> Iterator[SpawnSite]:
    for root in _stmt_exprs(stmt):
        awaited = _awaited_ids(root)
        spawns = [
            node
            for node in ast.walk(root)
            if isinstance(node, ast.Call) and _spawn_via(resolve, node)
        ]
        spawn_ids = {id(node) for node in spawns}
        for node in spawns:
            via = _spawn_via(resolve, node)
            direct_refs = _call_refs(node, resolve, exclude=spawn_ids)
            refs = direct_refs
            comp = _enclosing_comp(root, node)
            if not refs:
                # ``[spawn(c) for c in (self._a(), self._b())]``: the
                # launched coroutines are named elsewhere in the
                # statement — fall back to every other call in it.
                refs = _call_refs(
                    root, resolve, exclude=spawn_ids | {id(node)}
                )
            yield SpawnSite(
                lineno=node.lineno,
                col=node.col_offset + 1,
                via=via,
                refs=refs,
                multi=(
                    in_loop
                    or (comp is not None and bool(direct_refs))
                    or len(direct_refs) != len(set(direct_refs))
                ),
                discarded=_is_discarded(stmt, root, node, awaited),
            )


def _spawn_via(
    resolve: Callable[[ast.expr], str | None], node: ast.Call
) -> str:
    resolved = resolve(node.func)
    if resolved in _SPAWN_CALLS:
        return resolved
    if (
        resolved is None
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _SPAWN_ATTRS
    ):
        return f".{node.func.attr}()"
    return ""


def _supervised(node: ast.Call) -> bool:
    """``tg.create_task(...)`` — a TaskGroup/nursery supervises its
    tasks: exceptions propagate at scope exit, nothing leaks."""
    if not isinstance(node.func, ast.Attribute):
        return False
    receiver = dotted_name(node.func.value).split(".")[-1].lower()
    return any(frag in receiver for frag in _SUPERVISED_FRAGMENTS)


def _is_discarded(
    stmt: ast.stmt,
    root: ast.expr,
    spawn: ast.Call,
    awaited: set[int],
) -> bool:
    if not isinstance(stmt, ast.Expr) or id(spawn) in awaited:
        return False
    if _supervised(spawn):
        return False
    value = stmt.value
    if value is spawn:
        return True
    # A bare ``[spawn(c) for c in …]`` statement discards the list —
    # and with it every handle it holds.
    return (
        isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp))
        and value.elt is spawn
    )


def _awaited_ids(root: ast.expr) -> set[int]:
    ids: set[int] = set()
    for node in ast.walk(root):
        if isinstance(node, ast.Await):
            ids.update(id(inner) for inner in ast.walk(node.value))
    return ids


def _enclosing_comp(root: ast.expr, spawn: ast.Call) -> ast.expr | None:
    for node in ast.walk(root):
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
        ) and any(inner is spawn for inner in ast.walk(node)):
            return node
    return None


def _call_refs(
    root: ast.expr,
    resolve: Callable[[ast.expr], str | None],
    exclude: set[int],
) -> tuple[str, ...]:
    """References of the calls under ``root`` whose results look like
    coroutines being handed to a spawn — in source order, excluding the
    spawn calls themselves."""
    refs: list[str] = []
    scan = (
        [a for arg in root.args for a in ast.walk(
            arg.value if isinstance(arg, ast.Starred) else arg
        )]
        + [a for kw in root.keywords for a in ast.walk(kw.value)]
        if isinstance(root, ast.Call)
        else list(ast.walk(root))
    )
    for node in scan:
        if not isinstance(node, ast.Call) or id(node) in exclude:
            continue
        ref = _ref_of(resolve, node)
        if ref:
            refs.append(ref)
    return tuple(refs)


def _ref_of(
    resolve: Callable[[ast.expr], str | None], node: ast.Call
) -> str:
    """Same shape as the call-graph extractor's references — duplicated
    here because :mod:`repro.checks.callgraph` imports *this* module."""
    resolved = resolve(node.func)
    if resolved is not None:
        return f"abs:{resolved}"
    if isinstance(node.func, ast.Name):
        return f"local:{node.func.id}"
    if isinstance(node.func, ast.Attribute):
        return f"method:{node.func.attr}"
    return ""


# -- module-global mutation scan ---------------------------------------


def _global_mutations(
    fn: ast.AsyncFunctionDef, module_globals: frozenset[str]
) -> Iterator[GlobalMutation]:
    locals_, declared = _local_bindings(fn)

    def is_global(name: str) -> bool:
        return name in declared or (
            name in module_globals and name not in locals_
        )

    emitted: set[tuple[str, int, int]] = set()

    def emit(name: str, how: str, node: ast.AST) -> Iterator[GlobalMutation]:
        site = (name, int(node.lineno), int(node.col_offset) + 1)
        if site not in emitted:
            emitted.add(site)
            yield GlobalMutation(
                name=name, how=how, lineno=site[1], col=site[2]
            )

    for node in _walk_own_scope(fn):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            how = (
                "augmented assignment"
                if isinstance(node, ast.AugAssign)
                else "assignment"
            )
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                for leaf in ast.walk(target):
                    if isinstance(leaf, ast.Name) and leaf.id in declared:
                        yield from emit(leaf.id, how, node)
                    elif (
                        isinstance(leaf, ast.Subscript)
                        and isinstance(leaf.value, ast.Name)
                        and is_global(leaf.value.id)
                    ):
                        yield from emit(
                            leaf.value.id, "item assignment", node
                        )
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id in declared:
                    yield from emit(target.id, "deletion", node)
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and is_global(target.value.id)
                ):
                    yield from emit(target.value.id, "item deletion", node)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
            and isinstance(node.func.value, ast.Name)
            and is_global(node.func.value.id)
        ):
            yield from emit(
                node.func.value.id, f".{node.func.attr}() call", node
            )


# ----------------------------------------------------------------------
# whole-program judgement
# ----------------------------------------------------------------------


class InterferenceEngine:
    """Which coroutines may interleave, and who else writes what.

    Built once per :class:`~repro.checks.project.ProjectModel` by the
    concurrency project rules.  The *concurrent set* is every async
    function reachable — through the call graph — from a coroutine
    reference at some spawn site; those run as tasks and interleave at
    every await with whatever else the loop holds.  A member is
    *multi-instance* when two copies of it can be in flight at once:
    spawned from a loop/duplicated site, spawned at two or more sites,
    or reachable from a multi-instance root.
    """

    def __init__(self, model: "ProjectModel") -> None:
        self.model = model
        #: concurrent function -> may two instances interleave?
        self.concurrent: dict["FunctionKey", bool] = {}
        self._writers: dict[
            tuple[str, str, str], list["FunctionKey"]
        ] = {}
        self._link()

    # -- construction ---------------------------------------------------

    def _async_functions(self) -> dict["FunctionKey", object]:
        return {
            key: fn
            for key, fn in self.model.functions.items()
            if fn.concurrency is not None
        }

    def _link(self) -> None:
        async_fns = self._async_functions()
        spawn_counts: dict["FunctionKey", int] = {}
        for key, fn in async_fns.items():
            summary = fn.concurrency
            assert summary is not None
            for site in summary.spawns:
                for ref in site.refs:
                    for target in self.model.resolve_ref(
                        key[0], ref, methods=True
                    ):
                        if target not in async_fns:
                            continue
                        spawn_counts[target] = spawn_counts.get(
                            target, 0
                        ) + (2 if site.multi else 1)
        # Propagate reachability (and multi-ness) through the call graph.
        multi: dict["FunctionKey", bool] = {
            key: count >= 2 for key, count in spawn_counts.items()
        }
        worklist = list(spawn_counts)
        reached = set(worklist)
        while worklist:
            key = worklist.pop()
            fn = self.model.functions[key]
            for call in fn.calls:
                for callee in self._resolve_call(key, call.ref):
                    if callee not in async_fns:
                        continue
                    was_multi = multi.get(callee, False)
                    now_multi = was_multi or multi[key]
                    multi[callee] = now_multi
                    if callee not in reached or now_multi != was_multi:
                        reached.add(callee)
                        worklist.append(callee)
        self.concurrent = {key: multi[key] for key in reached}
        for key in self.concurrent:
            fn = self.model.functions[key]
            summary = fn.concurrency
            assert summary is not None
            for var in summary.writes:
                self._writers.setdefault(
                    self._var_identity(key, var), []
                ).append(key)
        for writers in self._writers.values():
            writers.sort()

    def _resolve_call(
        self, caller: "FunctionKey", ref: str
    ) -> tuple["FunctionKey", ...]:
        """``abs:``/``local:`` resolve as usual; ``method:`` only within
        the caller's own class — name-global method matching would fuse
        unrelated classes into one concurrent blob."""
        if ref.startswith("method:"):
            fn = self.model.functions[caller]
            cls = getattr(fn, "cls", None)
            if cls is None:
                return ()
            candidate = (caller[0], f"{cls}.{ref[len('method:'):]}")
            return (candidate,) if candidate in self.model.functions else ()
        return self.model.resolve_ref(caller[0], ref)

    def _var_identity(
        self, key: "FunctionKey", var: str
    ) -> tuple[str, str, str]:
        """Where a shared variable actually lives.

        ``self.x`` is one variable per (module, class); a module global
        is one per module.  Two classes using the same attribute name
        never interfere."""
        fn = self.model.functions[key]
        cls = getattr(fn, "cls", None)
        if var.startswith("self."):
            return (key[0], cls or "", var[len("self.") :])
        return (key[0], "", var)

    # -- queries --------------------------------------------------------

    def interference_witness(
        self, key: "FunctionKey", var: str
    ) -> "FunctionKey | None":
        """A concurrent coroutine whose write of ``var`` can interleave
        with ``key``'s read→await→write window, or ``None``."""
        for writer in self._writers.get(self._var_identity(key, var), ()):
            if writer != key:
                return writer
            if self.concurrent.get(writer, False):
                return writer  # two instances of the same coroutine
        return None


# ----------------------------------------------------------------------
# JSON-shape narrowing helpers (cache entries arrive untyped)
# ----------------------------------------------------------------------


def _i(value: object) -> int:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise TypeError(f"expected a number, got {type(value).__name__}")
    return int(value)


def _l(value: object) -> list[object]:
    if not isinstance(value, (list, tuple)):
        raise TypeError(f"expected a list, got {type(value).__name__}")
    return list(value)


def _d(value: object) -> dict[str, object]:
    if not isinstance(value, dict):
        raise TypeError(f"expected an object, got {type(value).__name__}")
    return value
