"""The rule framework: base class, registry, scoping.

A rule is a class with a unique ``code`` (``ABC123`` shape), a
human-oriented ``name`` and ``rationale``, optional module ``scope`` /
``exempt`` prefixes, and a :meth:`Rule.check` generator over one
:class:`~repro.checks.context.FileContext`.

Scoping semantics (:meth:`Rule.applies_to`):

* a file whose module is *unknown* (not under a ``repro`` package — lint
  fixtures, scratch files) gets **every** rule: strict by default;
* ``exempt`` prefixes always win (e.g. RNG rules never fire inside
  :mod:`repro.rng` itself — that is where randomness is *allowed* to
  enter);
* a non-empty ``scope`` restricts the rule to those module prefixes
  (e.g. determinism-hazard rules only police simulation/experiment
  code, where wall-clock reads would poison reproducibility — the
  runner legitimately measures wall-clock for its journal).
"""

from __future__ import annotations

import abc
import re
from collections.abc import Iterator
from typing import ClassVar, TypeVar

from .context import FileContext
from .diagnostics import Diagnostic

__all__ = ["Rule", "register", "all_rules", "get_rule"]

_CODE_RE = re.compile(r"^[A-Z]{2,6}\d{3}$")

_REGISTRY: dict[str, "Rule"] = {}

R = TypeVar("R", bound="type[Rule]")


class Rule(abc.ABC):
    """One statically-checkable repository invariant."""

    #: Unique diagnostic code, e.g. ``RNG001``.
    code: ClassVar[str]
    #: Short kebab-ish label, e.g. ``module-global-random``.
    name: ClassVar[str]
    #: Which paper-reproduction invariant the rule protects, one line.
    rationale: ClassVar[str]
    #: Module prefixes the rule is restricted to; empty = everywhere.
    scope: ClassVar[tuple[str, ...]] = ()
    #: Module prefixes the rule never fires in.
    exempt: ClassVar[tuple[str, ...]] = ()

    def applies_to(self, module: str | None) -> bool:
        """Whether this rule should run against ``module``."""
        if module is None:
            return True
        if any(_prefixed(module, stem) for stem in self.exempt):
            return False
        if not self.scope:
            return True
        return any(_prefixed(module, stem) for stem in self.scope)

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield a :class:`Diagnostic` per violation in ``ctx``."""

    def diagnostic(
        self, ctx: FileContext, node: "HasLocation", message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` for this rule at ``node``'s location."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


class HasLocation:
    """Structural stand-in for AST nodes carrying lineno/col_offset."""

    lineno: int
    col_offset: int


def _prefixed(module: str, stem: str) -> bool:
    return module == stem or module.startswith(stem + ".")


def register(cls: R) -> R:
    """Class decorator adding a rule to the global registry."""
    code = getattr(cls, "code", "")
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code {code!r} does not match LETTERS+3digits")
    if code in _REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    _REGISTRY[code] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """The registered rule behind ``code`` (KeyError if unknown)."""
    return _REGISTRY[code.upper()]
