"""The rule framework: base classes, registry, scoping.

Two rule families share one code namespace:

* :class:`Rule` — per-file rules: a unique ``code`` (``ABC123`` shape),
  a human-oriented ``name`` and ``rationale``, optional module
  ``scope`` / ``exempt`` prefixes, and a :meth:`Rule.check` generator
  over one :class:`~repro.checks.context.FileContext`;
* :class:`ProjectRule` — whole-program rules: same metadata, but
  :meth:`ProjectRule.check` runs once over the linked
  :class:`~repro.checks.project.ProjectModel` (import graph, symbol
  tables, call graph) instead of per file.

Scoping semantics (:meth:`Rule.applies_to`):

* a file whose module is *unknown* (not under a ``repro`` package — lint
  fixtures, scratch files) gets **every** rule: strict by default;
* ``exempt`` prefixes always win (e.g. RNG rules never fire inside
  :mod:`repro.rng` itself — that is where randomness is *allowed* to
  enter);
* a non-empty ``scope`` restricts the rule to those module prefixes
  (e.g. determinism-hazard rules only police simulation/experiment
  code, where wall-clock reads would poison reproducibility — the
  runner legitimately measures wall-clock for its journal);
* ``category_exempt`` silences a rule per *directory family*
  (``examples``, ``benchmarks``, ``tests``, ``src``) regardless of the
  module — a benchmark's whole job is timing, so the wall-clock rule
  cannot sensibly police it.
"""

from __future__ import annotations

import abc
import re
from collections.abc import Iterator
from typing import TYPE_CHECKING, ClassVar, TypeVar

from .context import FileContext
from .diagnostics import Diagnostic

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .project import ProjectModel

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "all_rules",
    "project_rules",
    "all_rule_codes",
    "get_rule",
]

_CODE_RE = re.compile(r"^[A-Z]{2,6}\d{3}$")

_REGISTRY: dict[str, "Rule"] = {}
_PROJECT_REGISTRY: dict[str, "ProjectRule"] = {}

R = TypeVar("R", bound="type[Rule]")
P = TypeVar("P", bound="type[ProjectRule]")


class _RuleMeta:
    """Metadata and scoping shared by both rule families."""

    #: Unique diagnostic code, e.g. ``RNG001``.
    code: ClassVar[str]
    #: Short kebab-ish label, e.g. ``module-global-random``.
    name: ClassVar[str]
    #: Which paper-reproduction invariant the rule protects, one line.
    rationale: ClassVar[str]
    #: Module prefixes the rule is restricted to; empty = everywhere.
    scope: ClassVar[tuple[str, ...]] = ()
    #: Module prefixes the rule never fires in.
    exempt: ClassVar[tuple[str, ...]] = ()
    #: Directory families (``examples``, ``benchmarks``, ``tests``,
    #: ``src``) the rule never fires in.
    category_exempt: ClassVar[tuple[str, ...]] = ()

    def applies_to(
        self, module: str | None, category: str | None = None
    ) -> bool:
        """Whether this rule should run against ``module``/``category``."""
        if category is not None and category in self.category_exempt:
            return False
        if module is None:
            return True
        if any(_prefixed(module, stem) for stem in self.exempt):
            return False
        if not self.scope:
            return True
        return any(_prefixed(module, stem) for stem in self.scope)


class Rule(_RuleMeta, abc.ABC):
    """One statically-checkable per-file repository invariant."""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        """Yield a :class:`Diagnostic` per violation in ``ctx``."""

    def diagnostic(
        self, ctx: FileContext, node: "HasLocation", message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` for this rule at ``node``'s location.

        The diagnostic carries the node's *suppression span* so a
        ``# repro: noqa[...]`` marker anywhere on the lines of a
        multi-line statement (or on a decorator line of a decorated
        ``def``) silences it — not just a marker on the first line.
        """
        line = getattr(node, "lineno", 1)
        return Diagnostic(
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
            span=suppression_span(node),
        )


class ProjectRule(_RuleMeta, abc.ABC):
    """One whole-program invariant, checked over the linked project."""

    @abc.abstractmethod
    def check(self, model: "ProjectModel") -> Iterator[Diagnostic]:
        """Yield a :class:`Diagnostic` per violation in ``model``."""

    def diagnostic(
        self, path: str, line: int, col: int, message: str
    ) -> Diagnostic:
        """A :class:`Diagnostic` for this rule at an explicit location."""
        return Diagnostic(
            path=path, line=line, col=col, code=self.code, message=message
        )


class HasLocation:
    """Structural stand-in for AST nodes carrying lineno/col_offset."""

    lineno: int
    col_offset: int


def suppression_span(node: object) -> tuple[int, int]:
    """The inclusive line range a ``noqa`` marker may sit on for ``node``.

    * a *simple* node (expression, call, simple statement) spans its own
      physical lines, so the marker can trail the closing paren of a
      multi-line call;
    * a *compound* node (``def``/``class``/``for``/``try``/handler/...)
      spans from its first decorator (if any) to the last line *before*
      its body — a marker inside the body must not silence the header.
    """
    start = int(getattr(node, "lineno", 1))
    end = int(getattr(node, "end_lineno", start) or start)
    decorators = getattr(node, "decorator_list", None)
    if decorators:
        start = min([start] + [int(d.lineno) for d in decorators])
    body = getattr(node, "body", None)
    if isinstance(body, list) and body and hasattr(body[0], "lineno"):
        end = max(start, int(body[0].lineno) - 1)
    return (start, end)


def _prefixed(module: str, stem: str) -> bool:
    return module == stem or module.startswith(stem + ".")


def _claim_code(cls: type) -> str:
    code = getattr(cls, "code", "")
    if not _CODE_RE.match(code):
        raise ValueError(f"rule code {code!r} does not match LETTERS+3digits")
    if code in _REGISTRY or code in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule code {code!r}")
    return code


def register(cls: R) -> R:
    """Class decorator adding a per-file rule to the global registry."""
    _REGISTRY[_claim_code(cls)] = cls()
    return cls


def register_project(cls: P) -> P:
    """Class decorator adding a whole-program rule to the registry."""
    _PROJECT_REGISTRY[_claim_code(cls)] = cls()
    return cls


def all_rules() -> list[Rule]:
    """Every registered per-file rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def project_rules() -> list[ProjectRule]:
    """Every registered whole-program rule, sorted by code."""
    return [_PROJECT_REGISTRY[code] for code in sorted(_PROJECT_REGISTRY)]


def all_rule_codes() -> list[str]:
    """Every registered rule code (both families), sorted."""
    return sorted([*_REGISTRY, *_PROJECT_REGISTRY])


def get_rule(code: str) -> Rule | ProjectRule:
    """The registered rule behind ``code`` (KeyError if unknown)."""
    key = code.upper()
    if key in _REGISTRY:
        return _REGISTRY[key]
    return _PROJECT_REGISTRY[key]
