"""Per-file analysis context shared by every rule.

:class:`FileContext` bundles what a rule needs to judge one module: the
parsed tree, the raw source lines, the file's dotted module path (used
for rule scoping), an import-alias resolver, and the ``# repro:
noqa[...]`` suppression map.

The alias resolver is the piece that makes name-based rules honest: a
call spelled through ``import numpy as np`` and one spelled through
``from numpy import random as npr`` both resolve to the same dotted
``numpy.random.*`` path, so a rule matches the *thing called*, not one
spelling of it.  Resolution is deliberately
conservative — a name that is not import-bound resolves to ``None`` and
is never matched, so locals shadowing a module name cannot produce
false positives.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FileContext", "module_name_for", "category_for"]

#: ``# repro: noqa[RNG001]`` / ``# repro: noqa[RNG001, EXC001]`` / ``[*]``.
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa\[([A-Za-z0-9_*,\s]+)\]")

#: Directory families that carry their own rule scoping.
_CATEGORIES = ("benchmarks", "examples", "tests", "src")


def module_name_for(path: Path) -> str | None:
    """The dotted module path of ``path``, or ``None`` outside the package.

    Inferred structurally: the module path starts at the *last* directory
    component named ``repro`` (so ``src/repro/simulation/engine.py`` is
    ``repro.simulation.engine`` from any checkout location).  Files not
    under a ``repro`` directory — lint fixtures, scratch scripts — get
    ``None``, which every scoped rule treats as "apply strictly".
    """
    parts = path.resolve().parts
    anchors = [i for i, part in enumerate(parts[:-1]) if part == "repro"]
    if not anchors:
        return None
    names = list(parts[anchors[-1] : -1])
    stem = Path(parts[-1]).stem
    if stem != "__init__":
        names.append(stem)
    return ".".join(names)


def category_for(path: Path) -> str | None:
    """The directory family of ``path``: the *last* path component that
    names one of the repository's top-level trees (``src``, ``tests``,
    ``examples``, ``benchmarks``), or ``None`` for anything else (lint
    fixtures in pytest tmp dirs, scratch files).  Rules use it for
    per-directory scoping — e.g. the wall-clock rule never polices
    ``benchmarks/``, whose whole job is timing.
    """
    parts = path.resolve().parts[:-1]
    for part in reversed(parts):
        if part in _CATEGORIES:
            return part
    return None


def _collect_aliases(
    tree: ast.Module, module: str | None, is_package: bool = False
) -> dict[str, str]:
    """Map local names to the fully-qualified things they import."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for item in node.names:
                if item.asname is not None:
                    aliases[item.asname] = item.name
                else:
                    top = item.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                base = _resolve_relative(base, node.level, module, is_package)
            for item in node.names:
                if item.name == "*":
                    continue
                bound = item.asname or item.name
                aliases[bound] = f"{base}.{item.name}" if base else item.name
    return aliases


def _resolve_relative(
    base: str, level: int, module: str | None, is_package: bool = False
) -> str:
    """Absolute form of a relative import, best-effort without the module.

    In a package ``__init__`` the dotted module name already names the
    package, so level 1 resolves against it directly; in a plain module
    level 1 strips the final component first.
    """
    if module is None:
        return base
    package = module.split(".")
    drop = level - 1 if is_package else level
    package = package[: len(package) - drop] if drop <= len(package) else []
    prefix = ".".join(package)
    if prefix and base:
        return f"{prefix}.{base}"
    return prefix or base


def _collect_noqa(lines: list[str]) -> dict[int, frozenset[str]]:
    suppressions: dict[int, frozenset[str]] = {}
    for lineno, line in enumerate(lines, start=1):
        match = _NOQA_RE.search(line)
        if match:
            codes = frozenset(
                code.strip().upper()
                for code in match.group(1).split(",")
                if code.strip()
            )
            if codes:
                suppressions[lineno] = codes
    return suppressions


@dataclass
class FileContext:
    """Everything a rule may inspect about one source file."""

    path: str
    source: str
    tree: ast.Module
    module: str | None = None
    category: str | None = None
    lines: list[str] = field(default_factory=list)
    aliases: dict[str, str] = field(default_factory=dict)
    noqa: dict[int, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def from_source(
        cls,
        source: str,
        path: str = "<string>",
        module: str | None = None,
        category: str | None = None,
    ) -> FileContext:
        """Parse ``source`` and build the full context (raises SyntaxError)."""
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        return cls(
            path=path,
            source=source,
            tree=tree,
            module=module,
            category=category,
            lines=lines,
            aliases=_collect_aliases(
                tree, module, path.endswith("__init__.py")
            ),
            noqa=_collect_noqa(lines),
        )

    def resolve(self, node: ast.expr) -> str | None:
        """The dotted name ``node`` refers to, via imports, else ``None``."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def is_suppressed(
        self, line: int, code: str, end_line: int | None = None
    ) -> bool:
        """True when a matching ``# repro: noqa[...]`` sits on any line
        of ``[line, end_line]`` (``end_line`` defaults to ``line``).

        The range form is what makes suppressions usable on multi-line
        statements and decorated defs: the diagnostic points at the
        first line, but the marker may trail the closing paren or sit on
        a decorator line.
        """
        wanted = code.upper()
        for candidate in range(line, (end_line or line) + 1):
            codes = self.noqa.get(candidate)
            if codes is not None and (wanted in codes or "*" in codes):
                return True
        return False
