"""Machine-readable lint output: ``--format json`` and ``--format sarif``.

The SARIF renderer targets the minimal SARIF 2.1.0 shape GitHub code
scanning ingests: a single run, a tool driver carrying the full rule
catalogue (every registered code, fired or not, so annotations link to
rule help), and one result per diagnostic with a physical location.
Paths are emitted repository-relative with forward slashes when a root
is supplied — SARIF consumers resolve ``artifactLocation.uri`` against
the checkout, not the linting machine's filesystem.
"""

from __future__ import annotations

import json
from pathlib import Path

from .diagnostics import Diagnostic
from .registry import ProjectRule, Rule, all_rules, project_rules

__all__ = ["render_json", "render_sarif", "SARIF_VERSION", "SARIF_SCHEMA"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

_TOOL_NAME = "repro-checks"


def _relative_uri(path: str, root: Path | None) -> str:
    candidate = Path(path)
    if root is not None:
        try:
            candidate = candidate.resolve().relative_to(root.resolve())
        except ValueError:
            candidate = Path(path)
    return candidate.as_posix()


def _catalogue() -> list[Rule | ProjectRule]:
    merged: list[Rule | ProjectRule] = [*all_rules(), *project_rules()]
    return sorted(merged, key=lambda rule: rule.code)


def render_json(
    diagnostics: list[Diagnostic],
    *,
    stats: dict[str, object] | None = None,
) -> str:
    """The ``--format json`` document: diagnostics plus run stats."""
    document: dict[str, object] = {
        "diagnostics": [d.to_dict() for d in diagnostics],
        "count": len(diagnostics),
    }
    if stats is not None:
        document["stats"] = stats
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def render_sarif(
    diagnostics: list[Diagnostic],
    *,
    root: Path | None = None,
) -> str:
    """A SARIF 2.1.0 document for ``diagnostics``."""
    catalogue = _catalogue()
    rule_index = {rule.code: index for index, rule in enumerate(catalogue)}
    results: list[dict[str, object]] = []
    for diagnostic in diagnostics:
        result: dict[str, object] = {
            "ruleId": diagnostic.code,
            "level": "error",
            "message": {"text": diagnostic.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(diagnostic.path, root),
                        },
                        "region": {
                            "startLine": diagnostic.line,
                            "startColumn": diagnostic.col,
                        },
                    }
                }
            ],
        }
        if diagnostic.code in rule_index:
            result["ruleIndex"] = rule_index[diagnostic.code]
        results.append(result)
    document: dict[str, object] = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": _TOOL_NAME,
                        "informationUri": (
                            "https://example.invalid/repro/docs/"
                            "static-analysis"
                        ),
                        "rules": [
                            {
                                "id": rule.code,
                                "name": rule.name,
                                "shortDescription": {
                                    "text": rule.rationale,
                                },
                            }
                            for rule in catalogue
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True) + "\n"
