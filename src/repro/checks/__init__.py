"""repro.checks — the repository's own static-analysis pass.

The reproduction's headline guarantee — parallel sweeps bit-identical
to the serial pipelines — rests on code conventions that no general
linter knows about: every random draw flows through :mod:`repro.rng`,
worker payloads are JSON-serialisable values, simulation code never
reads the wall clock, broad exception handlers either re-raise or leave
a journal record.  This package encodes those invariants as AST rules
(stdlib :mod:`ast`, no third-party dependencies) and checks them
*before* a sweep ever runs, in the spirit of ShareBackup's own
correctness-first stance: failure handling is precomputed and verified
offline, not discovered at failure time.

Two rule families share one registry and one code namespace:

* **per-file rules** (:class:`Rule`) see a single parsed file;
* **project rules** (:class:`ProjectRule`) see the linked
  :class:`ProjectModel` — import graph, symbol tables, and a
  best-effort call graph over the whole repository — and catch what no
  single file can show: transitive seed taint, payloads that reach
  non-JSON values through helpers, circuit mutations laundered through
  another module, import cycles, dead exports.

Entry points:

* :func:`lint_paths` — the full pipeline behind ``repro lint``:
  per-file + project rules, with an incremental cache under
  ``.repro-cache/lint/`` so warm runs re-parse nothing;
* :func:`check_paths` / :func:`check_file` / :func:`check_source` — the
  per-file pass alone;
* :func:`render_json` / :func:`render_sarif` — machine-readable
  reports (``--format json|sarif``);
* :func:`all_rules` / :func:`project_rules` — the registered rule
  sets, sorted by code.

Suppressions: a line carrying ``# repro: noqa[CODE]`` (comma-separated
codes, or ``*`` for all) silences diagnostics whose suppression span
covers that line — for a multi-line statement any of its physical
lines, for a decorated ``def`` any decorator or signature line.  Every
suppression is an *audited allowlist entry* — it should carry a
justification in the surrounding comment.

See ``docs/static-analysis.md`` for the rule catalogue, the project
model design, and the cache/SARIF workflow.
"""

from __future__ import annotations

from .cache import CHECKS_REV, CacheStats, LintCache, checks_rev
from .cfg import ControlFlowGraph, build_cfg
from .concurrency import ConcurrencySummary, InterferenceEngine
from .context import FileContext, category_for, module_name_for
from .diagnostics import Diagnostic
from .engine import (
    DEFAULT_TARGETS,
    SYNTAX_ERROR_CODE,
    LintResult,
    LintStats,
    changed_source_files,
    check_file,
    check_paths,
    check_source,
    iter_source_files,
    lint_paths,
)
from .numeric import KernelCall, NumericIssue, NumericSummary, analyze_kernels
from .project import ProjectModel
from .registry import (
    ProjectRule,
    Rule,
    all_rule_codes,
    all_rules,
    get_rule,
    project_rules,
    register,
    register_project,
)
from .sarif import render_json, render_sarif

# Importing the rule modules registers every shipped rule.
from .rules import (  # noqa: F401
    concurrency,
    controlplane,
    determinism,
    exceptions,
    interproc,
    perf,
    process,
    rng,
)

__all__ = [
    "CHECKS_REV",
    "CacheStats",
    "ConcurrencySummary",
    "ControlFlowGraph",
    "DEFAULT_TARGETS",
    "Diagnostic",
    "FileContext",
    "InterferenceEngine",
    "KernelCall",
    "LintCache",
    "LintResult",
    "LintStats",
    "NumericIssue",
    "NumericSummary",
    "ProjectModel",
    "ProjectRule",
    "Rule",
    "SYNTAX_ERROR_CODE",
    "all_rule_codes",
    "all_rules",
    "analyze_kernels",
    "build_cfg",
    "category_for",
    "changed_source_files",
    "check_file",
    "check_paths",
    "check_source",
    "checks_rev",
    "get_rule",
    "iter_source_files",
    "lint_paths",
    "module_name_for",
    "project_rules",
    "register",
    "register_project",
    "render_json",
    "render_sarif",
]
