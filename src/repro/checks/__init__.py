"""repro.checks — the repository's own static-analysis pass.

The reproduction's headline guarantee — parallel sweeps bit-identical
to the serial pipelines — rests on code conventions that no general
linter knows about: every random draw flows through :mod:`repro.rng`,
worker payloads are JSON-serialisable values, simulation code never
reads the wall clock, broad exception handlers either re-raise or leave
a journal record.  This package encodes those invariants as AST rules
(stdlib :mod:`ast`, no third-party dependencies) and checks them
*before* a sweep ever runs, in the spirit of ShareBackup's own
correctness-first stance: failure handling is precomputed and verified
offline, not discovered at failure time.

Entry points:

* :func:`check_paths` / :func:`check_file` / :func:`check_source` — run
  every registered rule and return :class:`Diagnostic` records;
* :func:`all_rules` — the registered rule set, sorted by code;
* the ``repro lint`` CLI subcommand (see :mod:`repro.cli`).

Suppressions: a line carrying ``# repro: noqa[CODE]`` (comma-separated
codes, or ``*`` for all) silences diagnostics reported on that line.
Every suppression is an *audited allowlist entry* — it should carry a
justification in the surrounding comment.

See ``docs/static-analysis.md`` for the rule catalogue and rationale.
"""

from __future__ import annotations

from .context import FileContext, module_name_for
from .diagnostics import Diagnostic
from .engine import (
    DEFAULT_TARGETS,
    check_file,
    check_paths,
    check_source,
    iter_source_files,
)
from .registry import Rule, all_rules, get_rule, register

# Importing the rule modules registers every shipped rule.
from .rules import (  # noqa: F401
    controlplane,
    determinism,
    exceptions,
    process,
    rng,
)

__all__ = [
    "DEFAULT_TARGETS",
    "Diagnostic",
    "FileContext",
    "Rule",
    "all_rules",
    "check_file",
    "check_paths",
    "check_source",
    "get_rule",
    "iter_source_files",
    "module_name_for",
    "register",
]
