"""File discovery and rule execution.

The engine walks the requested paths, parses each Python file once,
runs every registered rule whose scope covers the file's module, drops
diagnostics suppressed by ``# repro: noqa[...]`` markers, and returns
the remainder sorted by location.  A file that does not parse yields a
single ``SYN001`` diagnostic instead of aborting the run — the linter
must be able to report on a broken tree, not fall over with it.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from .context import FileContext, module_name_for
from .diagnostics import Diagnostic
from .registry import Rule, all_rules

__all__ = [
    "DEFAULT_TARGETS",
    "SYNTAX_ERROR_CODE",
    "iter_source_files",
    "check_source",
    "check_file",
    "check_paths",
]

#: What ``repro lint`` checks when invoked with no paths.
DEFAULT_TARGETS = ("src/repro",)

#: Pseudo-rule code for files the parser rejects.
SYNTAX_ERROR_CODE = "SYN001"

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro-cache"})


def iter_source_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deduplicated and sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen.add(candidate)
        else:
            seen.add(path)
    return sorted(seen)


def check_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
) -> list[Diagnostic]:
    """Run the rule set over one source string."""
    try:
        ctx = FileContext.from_source(source, path=path, module=module)
    except SyntaxError as exc:
        return [
            Diagnostic(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1),
                code=SYNTAX_ERROR_CODE,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    active = all_rules() if rules is None else list(rules)
    diagnostics: list[Diagnostic] = []
    for rule in active:
        if not rule.applies_to(ctx.module):
            continue
        for diagnostic in rule.check(ctx):
            if not ctx.is_suppressed(diagnostic.line, diagnostic.code):
                diagnostics.append(diagnostic)
    return sorted(diagnostics)


def check_file(
    path: str | Path, rules: Sequence[Rule] | None = None
) -> list[Diagnostic]:
    """Run the rule set over one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return check_source(
        source,
        path=str(file_path),
        module=module_name_for(file_path),
        rules=rules,
    )


def check_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> list[Diagnostic]:
    """Run the rule set over files and directory trees."""
    diagnostics: list[Diagnostic] = []
    for file_path in iter_source_files(paths):
        diagnostics.extend(check_file(file_path, rules=rules))
    return diagnostics
