"""File discovery and rule execution.

Two entry points share the per-file machinery:

* :func:`check_source` / :func:`check_file` / :func:`check_paths` — the
  original per-file pass: parse, run every registered per-file rule
  whose scope covers the file, drop suppressed diagnostics, sort;
* :func:`lint_paths` — the full pipeline behind ``repro lint``: the
  per-file pass over the requested paths **plus** the whole-program
  pass (:mod:`repro.checks.project`) over the reference corpus, with
  the incremental cache (:mod:`repro.checks.cache`) short-circuiting
  every unchanged file.  On a warm cache the run parses nothing at
  all — diagnostics and module summaries both replay from disk.

A file that does not parse yields a single ``SYN001`` diagnostic
instead of aborting the run — the linter must be able to report on a
broken tree, not fall over with it.

Project diagnostics are *reported* only into files the caller asked to
lint, but *judged* against the whole repository: liveness and cycle
evidence comes from the corpus regardless of the requested paths, so
``repro lint src/repro`` and a bare ``repro lint`` agree.
"""

from __future__ import annotations

import subprocess
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

from .cache import CachedFile, LintCache
from .callgraph import summarize, syntax_error_summary
from .context import FileContext, category_for, module_name_for
from .diagnostics import Diagnostic
from .project import ProjectModel, discover_corpus, repo_root_for
from .registry import Rule, all_rules, project_rules

__all__ = [
    "DEFAULT_TARGETS",
    "SYNTAX_ERROR_CODE",
    "LintStats",
    "LintResult",
    "iter_source_files",
    "check_source",
    "check_file",
    "check_paths",
    "lint_paths",
    "changed_source_files",
]

#: What ``repro lint`` checks when invoked with no paths.  Tests are
#: deliberately absent: they monkeypatch, reach into privates, and
#: assert on wall-clock — the rules would drown in sanctioned noise.
DEFAULT_TARGETS = ("src/repro", "examples", "benchmarks")

#: Pseudo-rule code for files the parser rejects.
SYNTAX_ERROR_CODE = "SYN001"

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".repro-cache"})


def iter_source_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths``, deduplicated and sorted."""
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for candidate in path.rglob("*.py"):
                if not _SKIP_DIRS.intersection(candidate.parts):
                    seen.add(candidate)
        else:
            seen.add(path)
    return sorted(seen)


def _run_file_rules(
    ctx: FileContext, rules: Sequence[Rule] | None = None
) -> list[Diagnostic]:
    """Per-file rules over an already-parsed context, suppressions applied."""
    active = all_rules() if rules is None else list(rules)
    diagnostics: list[Diagnostic] = []
    for rule in active:
        if not rule.applies_to(ctx.module, ctx.category):
            continue
        for diagnostic in rule.check(ctx):
            start, end = diagnostic.suppression_lines()
            if not ctx.is_suppressed(start, diagnostic.code, end):
                diagnostics.append(diagnostic)
    return sorted(diagnostics)


def check_source(
    source: str,
    path: str = "<string>",
    module: str | None = None,
    rules: Sequence[Rule] | None = None,
    category: str | None = None,
) -> list[Diagnostic]:
    """Run the per-file rule set over one source string."""
    try:
        ctx = FileContext.from_source(
            source, path=path, module=module, category=category
        )
    except SyntaxError as exc:
        return [_syntax_diagnostic(path, exc)]
    return _run_file_rules(ctx, rules)


def _syntax_diagnostic(path: str, exc: SyntaxError) -> Diagnostic:
    return Diagnostic(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1),
        code=SYNTAX_ERROR_CODE,
        message=f"file does not parse: {exc.msg}",
    )


def check_file(
    path: str | Path, rules: Sequence[Rule] | None = None
) -> list[Diagnostic]:
    """Run the per-file rule set over one file on disk."""
    file_path = Path(path)
    source = file_path.read_text(encoding="utf-8")
    return check_source(
        source,
        path=str(file_path),
        module=module_name_for(file_path),
        rules=rules,
        category=category_for(file_path),
    )


def check_paths(
    paths: Iterable[str | Path], rules: Sequence[Rule] | None = None
) -> list[Diagnostic]:
    """Run the per-file rule set over files and directory trees."""
    diagnostics: list[Diagnostic] = []
    for file_path in iter_source_files(paths):
        diagnostics.extend(check_file(file_path, rules=rules))
    return diagnostics


@dataclass
class LintStats:
    """What one :func:`lint_paths` run did, for ``--stats`` and tests."""

    linted_files: int = 0
    corpus_files: int = 0
    parsed_files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    project_diagnostics: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "linted_files": self.linted_files,
            "corpus_files": self.corpus_files,
            "parsed_files": self.parsed_files,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "project_diagnostics": self.project_diagnostics,
        }


@dataclass
class LintResult:
    """Diagnostics plus run accounting from :func:`lint_paths`."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    stats: LintStats = field(default_factory=LintStats)
    root: Path | None = None


def lint_paths(
    paths: Iterable[str | Path] | None = None,
    *,
    use_cache: bool = True,
    cache_dir: str | Path | None = None,
    project: bool = True,
) -> LintResult:
    """The full ``repro lint`` pipeline: per-file + whole-program rules.

    ``use_cache=False`` disables the incremental cache entirely;
    ``project=False`` skips the whole-program pass (and the corpus
    walk that feeds it).  Diagnostic paths are repository-relative
    whenever a repository root is discoverable, so output and cache
    entries are stable regardless of the invoking directory.
    """
    targets = [Path(p) for p in (DEFAULT_TARGETS if paths is None else paths)]
    linted = [p.resolve() for p in iter_source_files(targets)]
    linted_set = set(linted)
    root = repo_root_for(linted)
    corpus = discover_corpus(linted) if project else sorted(linted_set)

    cache: LintCache | None = None
    if use_cache:
        base = Path(cache_dir) if cache_dir is not None else (
            (root or Path.cwd()) / ".repro-cache" / "lint"
        )
        cache = LintCache(root=base)

    stats = LintStats(linted_files=len(linted), corpus_files=len(corpus))
    diagnostics: list[Diagnostic] = []
    summaries = []
    linted_display: set[str] = set()

    for resolved in corpus:
        display = _display_path(resolved, root)
        module = module_name_for(resolved)
        category = category_for(resolved)
        try:
            content = resolved.read_text(encoding="utf-8")
        except OSError:
            # A corpus entry can vanish between discovery and read:
            # ``--changed`` hands over paths from a git diff that may
            # include files deleted or renamed since, and the corpus
            # walk itself races editors/checkouts.  A missing file has
            # nothing to lint — skip it rather than crash the run.
            stats.corpus_files -= 1
            if resolved in linted_set:
                stats.linted_files -= 1
            continue
        entry = (
            cache.get(content, module, category, display)
            if cache is not None
            else None
        )
        if entry is None:
            stats.parsed_files += 1
            try:
                ctx = FileContext.from_source(
                    content, path=display, module=module, category=category
                )
            except SyntaxError as exc:
                entry = CachedFile(
                    diagnostics=(_syntax_diagnostic(display, exc),),
                    summary=syntax_error_summary(display, module, category),
                )
            else:
                entry = CachedFile(
                    diagnostics=tuple(_run_file_rules(ctx)),
                    summary=summarize(ctx),
                )
            if cache is not None:
                cache.put(content, module, category, entry, display)
        summaries.append(entry.summary)
        if resolved in linted_set:
            diagnostics.extend(entry.diagnostics)
            linted_display.add(entry.summary.path)

    if cache is not None:
        stats.cache_hits = cache.stats.hits
        stats.cache_misses = cache.stats.misses

    if project:
        model = ProjectModel.from_summaries(
            summaries, frozenset(linted_display)
        )
        for rule in project_rules():
            for diagnostic in rule.check(model):
                summary = model.summaries.get(diagnostic.path)
                if summary is None or diagnostic.path not in linted_display:
                    continue
                if not rule.applies_to(summary.module, summary.category):
                    continue
                start, end = diagnostic.suppression_lines()
                if summary.is_suppressed(start, diagnostic.code, end):
                    continue
                diagnostics.append(diagnostic)
                stats.project_diagnostics += 1

    return LintResult(
        diagnostics=sorted(diagnostics), stats=stats, root=root
    )


def changed_source_files(cwd: str | Path | None = None) -> list[Path]:
    """Python files touched since ``HEAD`` — the ``lint --changed`` scope.

    The union of git's modified tracked files (staged or not) and
    untracked non-ignored files, filtered to ``.py`` files that still
    exist (a deleted file has nothing to lint).  Paths come back
    absolute, resolved against the work-tree root, so the result is
    independent of the invoking directory.  Raises ``RuntimeError``
    when git is unavailable or the directory is not a work tree —
    ``--changed`` outside a checkout is a usage error, not an empty
    success.
    """

    def git(*args: str) -> str:
        proc = subprocess.run(
            ["git", *args],
            cwd=None if cwd is None else str(cwd),
            capture_output=True,
            text=True,
            check=False,
        )
        if proc.returncode != 0:
            detail = proc.stderr.strip() or f"git {args[0]} failed"
            raise RuntimeError(detail)
        return proc.stdout

    try:
        top = Path(git("rev-parse", "--show-toplevel").strip())
        listed = git("diff", "--name-only", "HEAD").splitlines()
        listed += git(
            "ls-files", "--others", "--exclude-standard"
        ).splitlines()
    except OSError as exc:  # git binary missing entirely
        raise RuntimeError(f"git is not available: {exc}") from exc
    changed: set[Path] = set()
    for name in listed:
        if not name.endswith(".py"):
            continue
        candidate = top / name
        if candidate.is_file():
            changed.add(candidate.resolve())
    return sorted(changed)


def _display_path(resolved: Path, root: Path | None) -> str:
    """Repo-relative display form when possible — stable across cwds,
    which keeps cached diagnostics and SARIF URIs deterministic."""
    if root is not None:
        try:
            return resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return str(resolved)
