"""Structural invariant checks for the topologies in this reproduction.

These validators are used three ways:

* in tests (including hypothesis property tests over the ``k`` parameter);
* by builders' consumers that want fail-fast guarantees before running a
  long simulation;
* in examples, to show users what "a correct fat-tree" means.

Each check raises :class:`ValidationError` with a precise message; the
aggregate entry points return a report of everything verified.
"""

from __future__ import annotations

from .base import NodeKind, Topology
from .fattree import FatTree

__all__ = [
    "ValidationError",
    "validate_fattree",
    "validate_folded_clos",
    "check_port_counts",
]


class ValidationError(AssertionError):
    """A topology violates a structural invariant."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


def check_port_counts(tree: FatTree, allow_parallel: bool = False) -> None:
    """Every switch must use exactly ``k`` ports; hosts exactly one.

    ``allow_parallel`` relaxes the distinct-neighbour requirement for
    Aspen-style duplicated links (the *port* count must still be ``k``).
    """
    k = tree.k
    for node in tree.packet_switches(include_backup=False):
        degree = tree.degree(node.name)
        if node.kind is NodeKind.EDGE:
            expected = tree.hosts_per_edge + tree.half
            _require(
                degree == expected,
                f"{node.name}: degree {degree}, expected {expected} "
                f"({tree.hosts_per_edge} hosts + {tree.half} uplinks)",
            )
        elif node.kind is NodeKind.AGGREGATION:
            _require(degree == k, f"{node.name}: degree {degree}, expected {k}")
        elif node.kind is NodeKind.CORE:
            # Aspen leaves odd cores detached; attached cores carry 2 links/pod.
            if degree == 0 and allow_parallel:
                continue
            expected = 2 * k if (allow_parallel and degree != k) else k
            _require(
                degree in (k, expected),
                f"{node.name}: degree {degree}, expected {k}"
                + (f" or {expected}" if allow_parallel else ""),
            )
        if not allow_parallel:
            for neighbor in tree.neighbors(node.name):
                count = len(tree.links_between(node.name, neighbor))
                _require(
                    count == 1,
                    f"parallel links between {node.name} and {neighbor}",
                )
    for host in tree.hosts():
        _require(
            tree.degree(host.name) == 1,
            f"{host.name}: hosts must be single-homed in a plain fat-tree",
        )


def validate_folded_clos(tree: FatTree) -> None:
    """Level discipline: links only connect adjacent Clos levels."""
    order = {
        NodeKind.HOST: 0,
        NodeKind.EDGE: 1,
        NodeKind.AGGREGATION: 2,
        NodeKind.CORE: 3,
    }
    for link in tree.links.values():
        la = order[tree.nodes[link.a].kind]
        lb = order[tree.nodes[link.b].kind]
        _require(
            abs(la - lb) == 1,
            f"link {link.a}--{link.b} skips levels ({la} to {lb})",
        )


def validate_fattree(tree: FatTree, allow_parallel: bool = False) -> dict[str, int]:
    """Full structural validation of a fat-tree (or AB/Aspen variant).

    Checks inventory sizes, port counts, level discipline, in-pod
    bipartite completeness, and the one-core-link-per-pod property.
    Returns a summary dict for reporting.
    """
    k, half = tree.k, tree.half
    edges = tree.nodes_of_kind(NodeKind.EDGE, include_backup=False)
    aggs = tree.nodes_of_kind(NodeKind.AGGREGATION, include_backup=False)
    cores = tree.nodes_of_kind(NodeKind.CORE, include_backup=False)
    hosts = tree.hosts()

    _require(len(edges) == k * half, f"expected {k * half} edges, got {len(edges)}")
    _require(len(aggs) == k * half, f"expected {k * half} aggs, got {len(aggs)}")
    _require(
        len(cores) == half * half,
        f"expected {half * half} cores, got {len(cores)}",
    )
    _require(
        len(hosts) == k * half * tree.hosts_per_edge,
        f"expected {k * half * tree.hosts_per_edge} hosts, got {len(hosts)}",
    )

    validate_folded_clos(tree)
    check_port_counts(tree, allow_parallel=allow_parallel)

    # In-pod edge--agg complete bipartite graph.
    for pod in range(k):
        for edge in tree.edge_switches(pod):
            up = {
                n
                for n in tree.neighbors(edge)
                if tree.nodes[n].kind is NodeKind.AGGREGATION
            }
            _require(
                up == set(tree.agg_switches(pod)),
                f"{edge} must connect to every aggregation switch of pod {pod}",
            )

    # Every attached core touches each pod the same number of times.
    for core in cores:
        pods_touched: dict[int, int] = {}
        for neighbor in tree.neighbors(core.name):
            node = tree.nodes[neighbor]
            _require(
                node.kind is NodeKind.AGGREGATION,
                f"core {core.name} connects to non-aggregation {neighbor}",
            )
            count = len(tree.links_between(core.name, neighbor))
            pods_touched[node.pod] = pods_touched.get(node.pod, 0) + count
        if not pods_touched:
            _require(allow_parallel, f"core {core.name} is fully detached")
            continue
        per_pod = set(pods_touched.values())
        _require(
            len(pods_touched) == k and len(per_pod) == 1,
            f"core {core.name} touches pods unevenly: {pods_touched}",
        )

    return {
        "k": k,
        "edges": len(edges),
        "aggs": len(aggs),
        "cores": len(cores),
        "hosts": len(hosts),
        "links": len(tree.links),
    }
