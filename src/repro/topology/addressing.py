"""Fat-tree addressing per Al-Fares et al. (SIGCOMM'08), used by ShareBackup.

The original fat-tree paper assigns addresses from the private ``10.0.0.0/8``
block:

* pod switches get ``10.pod.switch.1`` where ``switch`` enumerates edge
  switches ``0 .. k/2-1`` left to right, then aggregation switches
  ``k/2 .. k-1``;
* core switches get ``10.k.j.i`` where ``(j, i)`` encodes the core's grid
  position, ``j, i ∈ [1, k/2]``;
* hosts get ``10.pod.switch.id`` with ``id ∈ [2, k/2+1]``, i.e. host
  addresses share the pod/switch prefix of their edge switch.

Two-level routing (``repro.routing.twolevel``) matches on these addresses
with terminating *prefixes* for intra-pod traffic and *suffixes* for
spreading inter-pod traffic over the cores, so the address arithmetic
lives here in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Address", "Prefix", "Suffix", "FatTreeAddressPlan"]


@dataclass(frozen=True, order=True)
class Address:
    """A dotted-quad address, e.g. ``Address(10, 2, 0, 3)`` = ``10.2.0.3``."""

    o0: int
    o1: int
    o2: int
    o3: int

    def __post_init__(self) -> None:
        for octet in (self.o0, self.o1, self.o2, self.o3):
            if not 0 <= octet <= 255:
                raise ValueError(f"octet {octet} out of range in {self}")

    @classmethod
    def parse(cls, text: str) -> "Address":
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed address {text!r}")
        return cls(*(int(p) for p in parts))

    def octets(self) -> tuple[int, int, int, int]:
        return (self.o0, self.o1, self.o2, self.o3)

    def __str__(self) -> str:
        return f"{self.o0}.{self.o1}.{self.o2}.{self.o3}"


@dataclass(frozen=True)
class Prefix:
    """A ``/0``–``/32``-style prefix over whole octets (length in octets)."""

    octets: tuple[int, ...]  # leading octets that must match

    def matches(self, addr: Address) -> bool:
        return addr.octets()[: len(self.octets)] == self.octets

    @property
    def length(self) -> int:
        """Match specificity: number of leading octets pinned."""
        return len(self.octets)

    def __str__(self) -> str:
        shown = ".".join(str(o) for o in self.octets)
        return f"{shown}/{8 * len(self.octets)}"


@dataclass(frozen=True)
class Suffix:
    """A trailing-octet match (fat-tree uses ``/8`` suffixes on the host id)."""

    octets: tuple[int, ...]  # trailing octets that must match

    def matches(self, addr: Address) -> bool:
        n = len(self.octets)
        return addr.octets()[4 - n :] == self.octets

    @property
    def length(self) -> int:
        return len(self.octets)

    def __str__(self) -> str:
        shown = ".".join(str(o) for o in self.octets)
        return f"*.{shown}/{8 * len(self.octets)} (suffix)"


class FatTreeAddressPlan:
    """Address assignment for a ``k``-ary fat-tree.

    The plan is pure arithmetic — it does not need a topology object — so
    routing-table construction, VLAN impersonation, and tests can all share
    it.  ``k`` must be even and at most 254 to keep host ids within an
    octet (the paper's own constraint).
    """

    def __init__(self, k: int) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree parameter k must be even and >= 2, got {k}")
        if k > 254:
            raise ValueError(f"k={k} overflows octet-based addressing")
        self.k = k
        self.half = k // 2

    # -- switches ------------------------------------------------------

    def edge_address(self, pod: int, index: int) -> Address:
        """Address of edge switch ``E_{pod,index}``."""
        self._check_pod_switch(pod, index)
        return Address(10, pod, index, 1)

    def aggregation_address(self, pod: int, index: int) -> Address:
        """Address of aggregation switch ``A_{pod,index}``."""
        self._check_pod_switch(pod, index)
        return Address(10, pod, self.half + index, 1)

    def core_address(self, core_index: int) -> Address:
        """Address of core switch ``C_{core_index}`` (global index).

        Core ``c`` sits at grid position ``(j, i) = (c // (k/2) + 1,
        c % (k/2) + 1)`` giving ``10.k.j.i``.
        """
        if not 0 <= core_index < self.half * self.half:
            raise ValueError(f"core index {core_index} out of range for k={self.k}")
        j = core_index // self.half + 1
        i = core_index % self.half + 1
        return Address(10, self.k, j, i)

    # -- hosts -----------------------------------------------------------

    def host_address(self, pod: int, edge_index: int, host_id: int) -> Address:
        """Address of the ``host_id``-th host (0-based) under an edge switch."""
        self._check_pod_switch(pod, edge_index)
        if not 0 <= host_id < self.half:
            raise ValueError(f"host id {host_id} out of range for k={self.k}")
        return Address(10, pod, edge_index, 2 + host_id)

    def host_location(self, addr: Address) -> tuple[int, int, int]:
        """Inverse of :meth:`host_address`: ``(pod, edge_index, host_id)``."""
        if addr.o0 != 10 or not self._is_host(addr):
            raise ValueError(f"{addr} is not a fat-tree host address")
        return (addr.o1, addr.o2, addr.o3 - 2)

    # -- classification ------------------------------------------------

    def _is_host(self, addr: Address) -> bool:
        return (
            addr.o1 < self.k
            and addr.o2 < self.half
            and 2 <= addr.o3 < 2 + self.half
        )

    def pod_of(self, addr: Address) -> int | None:
        """Pod index of a pod-local address, ``None`` for core addresses."""
        return addr.o1 if addr.o1 < self.k else None

    # -- prefixes / suffixes used by two-level routing -------------------

    def pod_prefix(self, pod: int) -> Prefix:
        """``10.pod/16`` — all addresses within a pod."""
        return Prefix((10, pod))

    def subnet_prefix(self, pod: int, edge_index: int) -> Prefix:
        """``10.pod.edge/24`` — the rack subnet of one edge switch."""
        return Prefix((10, pod, edge_index))

    def host_suffix(self, host_id: int) -> Suffix:
        """``0.0.0.(2+host_id)/8`` suffix used to spread upward traffic."""
        return Suffix((2 + host_id,))

    # -- helpers ---------------------------------------------------------

    def _check_pod_switch(self, pod: int, index: int) -> None:
        if not 0 <= pod < self.k:
            raise ValueError(f"pod {pod} out of range for k={self.k}")
        if not 0 <= index < self.half:
            raise ValueError(f"switch index {index} out of range for k={self.k}")
