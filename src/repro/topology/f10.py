"""F10 AB fat-tree (Liu et al., NSDI'13) — the second baseline of the paper.

F10 keeps the fat-tree's switch inventory but *skews the wiring* between
the aggregation and core layers so that adjacent subtrees have different
parent sets.  We realise the AB construction as:

* **Type-A pods** (even pod index) use the standard fat-tree pattern:
  aggregation switch ``i`` connects to *row* ``i`` of the ``k/2 × k/2``
  core grid — cores ``i*(k/2) + j``.
* **Type-B pods** (odd pod index) connect aggregation switch ``i`` to
  *column* ``i`` of the grid — cores ``j*(k/2) + i``.

Every core still has exactly one link into each pod (one per A-pod via its
row position, one per B-pod via its column position), so the topology
remains a valid folded Clos with full bisection bandwidth.  The parent
sets of same-indexed aggregation switches differ between A and B pods,
which is what gives F10 its short local detours: when a core (or an
agg→core link) dies, the traffic can be bounced through a sibling
subtree that still reaches a live core — at the price of a longer path.
That longer-detour behaviour (and the congestion it induces) is exactly
what Section 2.2 of the ShareBackup paper measures; the detour logic
itself lives in ``repro.routing.reroute_f10``.
"""

from __future__ import annotations

from .fattree import FatTree

__all__ = ["F10Tree"]


class F10Tree(FatTree):
    """An AB fat-tree: fat-tree inventory, skewed aggregation–core wiring."""

    def __init__(
        self,
        k: int,
        hosts_per_edge: int | None = None,
        link_capacity: float = 10e9,
        name: str | None = None,
    ) -> None:
        super().__init__(
            k,
            hosts_per_edge=hosts_per_edge,
            link_capacity=link_capacity,
            name=name or f"f10-k{k}",
        )

    # The builder in FatTree wires agg→core through core_of(); overriding
    # it is all the AB construction needs.  Pod type is determined at wire
    # time via _current_pod, set by _add_pod.

    def _add_pod(self, pod: int) -> None:
        self._current_pod = pod
        try:
            super()._add_pod(pod)
        finally:
            del self._current_pod

    def core_of(self, agg_index: int, port: int) -> int:
        pod = getattr(self, "_current_pod", None)
        if pod is None:
            raise RuntimeError(
                "F10Tree.core_of is wiring-time only; use core_of_pod for lookups"
            )
        return self.core_of_pod(pod, agg_index, port)

    # ------------------------------------------------------------------
    # pod-type aware structural accessors
    # ------------------------------------------------------------------

    @staticmethod
    def pod_type(pod: int) -> str:
        """``"A"`` for even pods (standard wiring), ``"B"`` for odd pods."""
        return "A" if pod % 2 == 0 else "B"

    def core_of_pod(self, pod: int, agg_index: int, port: int) -> int:
        """Core reached from port ``port`` of aggregation ``agg_index`` in ``pod``."""
        if self.pod_type(pod) == "A":
            return agg_index * self.half + port  # row agg_index
        return port * self.half + agg_index  # column agg_index

    def agg_of_core(self, core_index: int, pod: int) -> int:
        """In-pod index of the aggregation switch core ``core_index`` reaches
        inside ``pod`` (depends on the pod's type)."""
        if self.pod_type(pod) == "A":
            return core_index // self.half  # row
        return core_index % self.half  # column
