"""Aspen-tree-style fat-tree with duplicated aggregation–core links.

Aspen Trees (Walraed-Sullivan et al., CoNEXT'13) trade core-layer path
diversity for *local* fault tolerance: a lower-layer switch disconnects
half of its upper-layer parents and uses the freed ports to duplicate the
links to the remaining half.  A switch that loses one uplink can then fail
over to the parallel link locally — no dilation, no upstream
notification — as long as only one of a duplicated pair dies.

The ShareBackup paper uses Aspen Tree in two places:

* **Cost (Table 2 / Figure 5)** — there it uses the authors' own
  accounting (``k²/2`` extra switches, ``k³/4`` extra cables, i.e. one
  extra switch layer to reconnect the partitioned core).  That accounting
  is implemented independently in :mod:`repro.cost.models`; this module is
  *not* used for cost numbers.
* **Table 3 qualitative comparison** — bandwidth loss ✗ avoided? no;
  path dilation: none; upstream repair: sometimes needed (``√/×``).  For
  that we need a runnable topology, which is what this builder provides.

Construction: aggregation switch ``i`` keeps the *even* ports of its core
row and doubles each kept link, i.e. it connects twice to cores
``i*(k/2) + 2j`` for ``j < k/4``.  ``k`` must be a multiple of 4.  Core
switches symmetrically end up with two links to each pod they still
serve and no links to the others, preserving per-switch port counts.
Note the resulting core layer is *partitioned* relative to fat-tree (half
the cores are unused); the real Aspen design re-attaches them with an
extra layer, which only matters for cost and is handled in the cost
model.  The unused cores are left in place (down-linked) so that switch
counts still match the fat-tree inventory the cost model starts from.
"""

from __future__ import annotations

from .fattree import FatTree

__all__ = ["AspenTree"]


class AspenTree(FatTree):
    """Fat-tree with duplicated agg–core links (1-fault-tolerant at that level)."""

    def __init__(
        self,
        k: int,
        hosts_per_edge: int | None = None,
        link_capacity: float = 10e9,
        name: str | None = None,
    ) -> None:
        if k % 4:
            raise ValueError(f"Aspen duplication needs k divisible by 4, got {k}")
        super().__init__(
            k,
            hosts_per_edge=hosts_per_edge,
            link_capacity=link_capacity,
            name=name or f"aspen-k{k}",
        )

    def core_of(self, agg_index: int, port: int) -> int:
        # Port 2j and 2j+1 both reach core i*(k/2) + 2j: every kept core
        # gets a duplicated (parallel) link, every odd core of the row is
        # dropped from this aggregation switch's parent set.
        return agg_index * self.half + (port - port % 2)

    def duplicated_cores(self, agg_index: int) -> list[int]:
        """Cores that aggregation switch ``agg_index`` reaches (each twice)."""
        return [agg_index * self.half + 2 * j for j in range(self.half // 2)]

    def is_attached_core(self, core_index: int) -> bool:
        """True if the core is in the served (even-column) half of its row."""
        return core_index % 2 == 0
