"""Core graph primitives for data center network topologies.

This module defines the low-level building blocks shared by every
topology in the reproduction: :class:`Node`, :class:`Link`, and
:class:`Topology`.  The model is deliberately explicit rather than a thin
wrapper over ``networkx``:

* links are first-class objects with identity, capacity, and an up/down
  state (parallel links between the same pair of nodes are allowed, which
  Aspen-style duplicated wiring needs);
* nodes carry a *kind* (host, edge, aggregation, core, circuit switch)
  plus structural coordinates (pod, in-pod index, level) that the
  structured routing code relies on;
* failure state is part of the topology itself so that failure injection,
  rerouting, and the ShareBackup control plane all observe one consistent
  view.

A :class:`Topology` can be exported to a ``networkx.Graph`` for generic
algorithms (connectivity checks in tests, for example), but the hot paths
— path enumeration and bandwidth allocation — operate on the explicit
adjacency structures kept here.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx as nx

__all__ = [
    "NodeKind",
    "Level",
    "Node",
    "Link",
    "Topology",
    "TopologyError",
    "DEFAULT_LINK_CAPACITY",
]

#: Default link capacity in bits per second (10 Gbps, the paper's link speed).
DEFAULT_LINK_CAPACITY: float = 10e9


class TopologyError(Exception):
    """Raised on malformed topology operations (duplicate nodes, bad links)."""


class NodeKind(Enum):
    """The role a node plays in the network."""

    HOST = "host"
    EDGE = "edge"
    AGGREGATION = "aggregation"
    CORE = "core"
    #: Physical-layer circuit switch (ShareBackup only).  Circuit switches
    #: are transparent to routing; they appear in the physical wiring model
    #: but not in the logical packet topology.
    CIRCUIT = "circuit"

    @property
    def is_packet_switch(self) -> bool:
        """True for store-and-forward packet switches (edge/agg/core)."""
        return self in (NodeKind.EDGE, NodeKind.AGGREGATION, NodeKind.CORE)


class Level(Enum):
    """Vertical position in a folded-Clos network, used by up/down routing."""

    HOST = 0
    EDGE = 1
    AGGREGATION = 2
    CORE = 3

    @classmethod
    def of(cls, kind: NodeKind) -> "Level":
        """Map a node kind to its Clos level.

        Circuit switches have no level: they are physical-layer devices
        spliced *into* links, not hops of the logical topology.
        """
        table = {
            NodeKind.HOST: cls.HOST,
            NodeKind.EDGE: cls.EDGE,
            NodeKind.AGGREGATION: cls.AGGREGATION,
            NodeKind.CORE: cls.CORE,
        }
        try:
            return table[kind]
        except KeyError:
            raise TopologyError(f"node kind {kind} has no Clos level") from None


@dataclass
class Node:
    """A device in the network.

    Attributes:
        name: Globally unique identifier, e.g. ``"E.1.0"`` for the 0th edge
            switch of pod 1 (mirroring the paper's :math:`E_{1,0}`).
        kind: The device role.
        pod: Pod index for in-pod devices, ``None`` for cores and for
            devices outside any pod.
        index: In-pod index for pod devices, global index for cores/hosts.
        is_backup: True for ShareBackup spare switches.  A backup switch is
            structurally identical to the regular members of its failure
            group but starts with no live role.
        up: Liveness flag.  A down node implies all incident links are
            non-operational.
        attrs: Free-form annotations (address, failure-group id, ...).
    """

    name: str
    kind: NodeKind
    pod: Optional[int] = None
    index: int = 0
    is_backup: bool = False
    up: bool = True
    attrs: dict = field(default_factory=dict)

    @property
    def level(self) -> Level:
        """Clos level of this node (raises for circuit switches)."""
        return Level.of(self.kind)

    def __hash__(self) -> int:  # nodes are identified by name
        return hash(self.name)

    def __repr__(self) -> str:
        state = "" if self.up else " DOWN"
        backup = " backup" if self.is_backup else ""
        return f"<Node {self.name} {self.kind.value}{backup}{state}>"


@dataclass
class Link:
    """An undirected physical link between two nodes.

    Links have identity (``link_id``) so parallel links are representable,
    and an ``up`` flag that failure injection toggles.  ``capacity`` is in
    bits per second and is shared by both directions independently — the
    fluid simulator treats each direction as a separate capacity pool,
    matching full-duplex Ethernet.
    """

    link_id: int
    a: str
    b: str
    capacity: float = DEFAULT_LINK_CAPACITY
    up: bool = True
    attrs: dict = field(default_factory=dict)

    def other(self, node: str) -> str:
        """The endpoint opposite ``node``."""
        if node == self.a:
            return self.b
        if node == self.b:
            return self.a
        raise TopologyError(f"{node} is not an endpoint of link {self.link_id}")

    def endpoints(self) -> tuple[str, str]:
        return (self.a, self.b)

    def __hash__(self) -> int:
        return self.link_id

    def __repr__(self) -> str:
        state = "" if self.up else " DOWN"
        return f"<Link {self.link_id} {self.a}--{self.b}{state}>"


class Topology:
    """A mutable network graph with explicit failure state.

    The class maintains three views kept consistent by construction:

    * ``nodes``: name → :class:`Node`;
    * ``links``: link id → :class:`Link`;
    * an adjacency index mapping each node to its neighbours and the link
      ids connecting them.

    *Operational* accessors (:meth:`up_neighbors`,
    :meth:`link_is_operational`, ...) take both link state and endpoint
    node state into account: a link whose endpoint switch died is down for
    all practical purposes even though the cable itself is healthy — this
    distinction matters for ShareBackup's failure diagnosis, which must
    tell faulty interfaces apart from healthy cables.
    """

    def __init__(self, name: str = "topology") -> None:
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.links: dict[int, Link] = {}
        self._adj: dict[str, dict[str, set[int]]] = {}
        self._link_ids = itertools.count()
        self._state_rev = 0

    @property
    def state_rev(self) -> int:
        """Monotone counter bumped by every mutation that can change
        reachability — construction (add/remove) and failure state.

        Per-topology caches (path enumeration memoises operational
        neighbour sets against this) compare revisions instead of
        subscribing to events: a stale revision means recompute.
        """
        return self._state_rev

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        """Register ``node``; the name must be unused."""
        if node.name in self.nodes:
            raise TopologyError(f"duplicate node name {node.name!r}")
        self.nodes[node.name] = node
        self._adj[node.name] = {}
        self._state_rev += 1
        return node

    def add_link(
        self,
        a: str,
        b: str,
        capacity: float = DEFAULT_LINK_CAPACITY,
        **attrs: object,
    ) -> Link:
        """Connect nodes ``a`` and ``b`` with a new link.

        Parallel links are allowed; self-loops are not.
        """
        if a == b:
            raise TopologyError(f"self-loop on {a!r}")
        for name in (a, b):
            if name not in self.nodes:
                raise TopologyError(f"unknown node {name!r}")
        link = Link(next(self._link_ids), a, b, capacity=capacity, attrs=attrs)
        self.links[link.link_id] = link
        self._adj[a].setdefault(b, set()).add(link.link_id)
        self._adj[b].setdefault(a, set()).add(link.link_id)
        self._state_rev += 1
        return link

    def remove_link(self, link_id: int) -> None:
        """Permanently delete a link (used by rewiring builders, not failures)."""
        link = self.links.pop(link_id)
        self._adj[link.a][link.b].discard(link_id)
        if not self._adj[link.a][link.b]:
            del self._adj[link.a][link.b]
        self._adj[link.b][link.a].discard(link_id)
        if not self._adj[link.b][link.a]:
            del self._adj[link.b][link.a]
        self._state_rev += 1

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def link(self, link_id: int) -> Link:
        return self.links[link_id]

    def has_node(self, name: str) -> bool:
        return name in self.nodes

    def neighbors(self, name: str) -> Iterator[str]:
        """All neighbours, regardless of liveness."""
        return iter(self._adj[name])

    def links_between(self, a: str, b: str) -> list[Link]:
        """All links (parallel included) between ``a`` and ``b``."""
        return [self.links[i] for i in self._adj.get(a, {}).get(b, ())]

    def links_of(self, name: str) -> Iterator[Link]:
        """All links incident to ``name``."""
        for ids in self._adj[name].values():
            for link_id in ids:
                yield self.links[link_id]

    def degree(self, name: str) -> int:
        return sum(len(ids) for ids in self._adj[name].values())

    def nodes_of_kind(self, kind: NodeKind, include_backup: bool = True) -> list[Node]:
        """All nodes of ``kind``, sorted by name for determinism."""
        return sorted(
            (
                n
                for n in self.nodes.values()
                if n.kind is kind and (include_backup or not n.is_backup)
            ),
            key=lambda n: n.name,
        )

    def hosts(self) -> list[Node]:
        return self.nodes_of_kind(NodeKind.HOST)

    def packet_switches(self, include_backup: bool = True) -> list[Node]:
        """All edge/aggregation/core switches, sorted by name."""
        return sorted(
            (
                n
                for n in self.nodes.values()
                if n.kind.is_packet_switch and (include_backup or not n.is_backup)
            ),
            key=lambda n: n.name,
        )

    # ------------------------------------------------------------------
    # failure state
    # ------------------------------------------------------------------

    def fail_node(self, name: str) -> None:
        self.nodes[name].up = False
        self._state_rev += 1

    def restore_node(self, name: str) -> None:
        self.nodes[name].up = True
        self._state_rev += 1

    def fail_link(self, link_id: int) -> None:
        self.links[link_id].up = False
        self._state_rev += 1

    def restore_link(self, link_id: int) -> None:
        self.links[link_id].up = True
        self._state_rev += 1

    def node_is_up(self, name: str) -> bool:
        return self.nodes[name].up

    def link_is_operational(self, link_id: int) -> bool:
        """True if the link and *both* of its endpoints are up."""
        link = self.links[link_id]
        return link.up and self.nodes[link.a].up and self.nodes[link.b].up

    def up_neighbors(self, name: str) -> Iterator[tuple[str, Link]]:
        """Yield ``(neighbor, link)`` pairs reachable over operational links."""
        if not self.nodes[name].up:
            return
        for other, ids in self._adj[name].items():
            if not self.nodes[other].up:
                continue
            for link_id in ids:
                link = self.links[link_id]
                if link.up:
                    yield other, link

    def operational_links_between(self, a: str, b: str) -> list[Link]:
        return [
            link
            for link in self.links_between(a, b)
            if self.link_is_operational(link.link_id)
        ]

    def failed_nodes(self) -> list[str]:
        return sorted(n.name for n in self.nodes.values() if not n.up)

    def failed_links(self) -> list[int]:
        return sorted(l.link_id for l in self.links.values() if not l.up)

    def clear_failures(self) -> None:
        """Restore every node and link to the up state."""
        for node in self.nodes.values():
            node.up = True
        for link in self.links.values():
            link.up = True
        self._state_rev += 1

    # ------------------------------------------------------------------
    # interop & utilities
    # ------------------------------------------------------------------

    def to_networkx(self, operational_only: bool = False) -> "nx.MultiGraph":
        """Export to a ``networkx.MultiGraph`` (lazy import keeps startup cheap)."""
        import networkx as nx

        graph = nx.MultiGraph(name=self.name)
        for node in self.nodes.values():
            if operational_only and not node.up:
                continue
            graph.add_node(node.name, kind=node.kind.value, pod=node.pod)
        for link in self.links.values():
            if operational_only and not self.link_is_operational(link.link_id):
                continue
            if link.a in graph and link.b in graph:
                graph.add_edge(link.a, link.b, key=link.link_id, capacity=link.capacity)
        return graph

    def path_links(self, node_path: Iterable[str]) -> list[Link]:
        """Resolve a node sequence into concrete links.

        When parallel links exist, the first operational one is used; if
        none is operational the first link is returned (the caller decides
        how to treat a dead path).
        """
        nodes = list(node_path)
        links: list[Link] = []
        for a, b in zip(nodes, nodes[1:]):
            candidates = self.links_between(a, b)
            if not candidates:
                raise TopologyError(f"no link between {a!r} and {b!r}")
            chosen = next(
                (l for l in candidates if self.link_is_operational(l.link_id)),
                candidates[0],
            )
            links.append(chosen)
        return links

    def path_is_operational(self, node_path: Iterable[str]) -> bool:
        """True when every hop of ``node_path`` has an operational link."""
        nodes = list(node_path)
        if any(not self.nodes[n].up for n in nodes):
            return False
        for a, b in zip(nodes, nodes[1:]):
            if not self.operational_links_between(a, b):
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"<Topology {self.name!r}: {len(self.nodes)} nodes, "
            f"{len(self.links)} links>"
        )
