"""k-ary fat-tree builder (Al-Fares et al., SIGCOMM'08).

The fat-tree is the substrate ShareBackup augments, the topology of the
paper's failure study (Section 2.2), and the cost baseline of Table 2.

Naming convention (mirrors the paper's Table 1):

* ``E.{pod}.{idx}``   — edge switch :math:`E_{pod,idx}`
* ``A.{pod}.{idx}``   — aggregation switch :math:`A_{pod,idx}`
* ``C.{idx}``         — core switch :math:`C_{idx}` (global index)
* ``H.{pod}.{edge}.{h}`` — the ``h``-th host under an edge switch

Wiring: edge ``j`` of every pod connects to all ``k/2`` aggregation
switches of its pod; aggregation switch ``i`` connects to cores
``i*(k/2) .. i*(k/2)+k/2-1`` (row ``i`` of the core grid); every edge
switch serves ``hosts_per_edge`` hosts.

``hosts_per_edge`` defaults to ``k/2`` (the canonical 1:1 fat-tree).  The
paper's failure study maps a 10:1 oversubscribed 150-rack trace onto a
``k=16`` fat-tree; passing ``hosts_per_edge = 10 * k/2`` reproduces that
oversubscription: each edge switch then terminates ten times more host
bandwidth than it has uplink bandwidth.
"""

from __future__ import annotations

from .addressing import Address, FatTreeAddressPlan
from .base import DEFAULT_LINK_CAPACITY, Node, NodeKind, Topology

__all__ = ["FatTree", "edge_name", "agg_name", "core_name", "host_name"]


def edge_name(pod: int, index: int) -> str:
    return f"E.{pod}.{index}"


def agg_name(pod: int, index: int) -> str:
    return f"A.{pod}.{index}"


def core_name(index: int) -> str:
    return f"C.{index}"


def host_name(pod: int, edge: int, h: int) -> str:
    return f"H.{pod}.{edge}.{h}"


class FatTree(Topology):
    """A complete ``k``-ary fat-tree.

    Attributes:
        k: Port count of each switch and the number of pods.
        half: ``k/2`` — edge/agg switches per pod, hosts per edge (at 1:1).
        hosts_per_edge: Hosts attached to each edge switch.
        plan: The :class:`FatTreeAddressPlan` used for switch addresses.
    """

    def __init__(
        self,
        k: int,
        hosts_per_edge: int | None = None,
        link_capacity: float = DEFAULT_LINK_CAPACITY,
        name: str | None = None,
    ) -> None:
        if k < 2 or k % 2:
            raise ValueError(f"fat-tree parameter k must be even and >= 2, got {k}")
        super().__init__(name or f"fattree-k{k}")
        self.k = k
        self.half = k // 2
        self.hosts_per_edge = self.half if hosts_per_edge is None else hosts_per_edge
        if self.hosts_per_edge < 1:
            raise ValueError("hosts_per_edge must be >= 1")
        self.link_capacity = link_capacity
        self.plan = FatTreeAddressPlan(k)
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        self._add_cores()
        for pod in range(self.k):
            self._add_pod(pod)

    def _add_cores(self) -> None:
        for c in range(self.half * self.half):
            self.add_node(
                Node(
                    core_name(c),
                    NodeKind.CORE,
                    pod=None,
                    index=c,
                    attrs={"address": self.plan.core_address(c)},
                )
            )

    def _add_pod(self, pod: int) -> None:
        for i in range(self.half):
            self.add_node(
                Node(
                    edge_name(pod, i),
                    NodeKind.EDGE,
                    pod=pod,
                    index=i,
                    attrs={"address": self.plan.edge_address(pod, i)},
                )
            )
            self.add_node(
                Node(
                    agg_name(pod, i),
                    NodeKind.AGGREGATION,
                    pod=pod,
                    index=i,
                    attrs={"address": self.plan.aggregation_address(pod, i)},
                )
            )
        # Hosts and host--edge links.
        for e in range(self.half):
            for h in range(self.hosts_per_edge):
                self.add_node(
                    Node(
                        host_name(pod, e, h),
                        NodeKind.HOST,
                        pod=pod,
                        index=h,
                        attrs={"address": self._host_address(pod, e, h)},
                    )
                )
                self.add_link(
                    host_name(pod, e, h), edge_name(pod, e), self.link_capacity
                )
        # Edge--aggregation full bipartite mesh inside the pod.
        for e in range(self.half):
            for a in range(self.half):
                self.add_link(edge_name(pod, e), agg_name(pod, a), self.link_capacity)
        # Aggregation--core: agg i owns core row i.
        for a in range(self.half):
            for j in range(self.half):
                self.add_link(
                    agg_name(pod, a),
                    core_name(self.core_of(a, j)),
                    self.link_capacity,
                )

    def _host_address(self, pod: int, edge: int, h: int) -> Address:
        if h < self.half:
            return self.plan.host_address(pod, edge, h)
        # Oversubscribed topologies exceed the canonical /24 host range;
        # extend the last octet as far as it goes and wrap into attrs-only
        # pseudo-addresses beyond that (routing by suffix still works
        # because suffixes only need to be spread, not unique).
        o3 = 2 + h
        if o3 > 255:
            o3 = 2 + (h % 254)
        return Address(10, pod, edge, o3)

    # ------------------------------------------------------------------
    # structural accessors used throughout the reproduction
    # ------------------------------------------------------------------

    def core_of(self, agg_index: int, port: int) -> int:
        """Global index of the core on ``port`` of aggregation switch ``agg_index``.

        Standard fat-tree wiring: row ``agg_index`` of the ``k/2 × k/2``
        core grid.  Subclasses (F10's AB fat-tree) override this.
        """
        return agg_index * self.half + port

    def agg_of_core(self, core_index: int, pod: int) -> int:
        """In-pod index of the aggregation switch that core ``core_index``
        connects to inside ``pod``.  Inverse of :meth:`core_of`."""
        return core_index // self.half

    def edge_switches(self, pod: int) -> list[str]:
        return [edge_name(pod, i) for i in range(self.half)]

    def agg_switches(self, pod: int) -> list[str]:
        return [agg_name(pod, i) for i in range(self.half)]

    def core_switches(self) -> list[str]:
        return [core_name(c) for c in range(self.half * self.half)]

    def hosts_of_edge(self, pod: int, edge: int) -> list[str]:
        return [host_name(pod, edge, h) for h in range(self.hosts_per_edge)]

    def all_host_names(self) -> list[str]:
        return [
            host_name(p, e, h)
            for p in range(self.k)
            for e in range(self.half)
            for h in range(self.hosts_per_edge)
        ]

    def edge_of_host(self, host: str) -> str:
        """Edge switch name serving ``host``."""
        node = self.nodes[host]
        if node.kind is not NodeKind.HOST:
            raise ValueError(f"{host!r} is not a host")
        _, pod, edge, _ = host.split(".")
        return edge_name(int(pod), int(edge))

    @property
    def num_hosts(self) -> int:
        return self.k * self.half * self.hosts_per_edge

    @property
    def num_racks(self) -> int:
        """Number of racks = number of edge switches."""
        return self.k * self.half

    @property
    def oversubscription(self) -> float:
        """Host bandwidth to uplink bandwidth ratio at the edge."""
        return self.hosts_per_edge / self.half

    def rack_of(self, host: str) -> int:
        """Global rack (edge switch) index of ``host``."""
        _, pod, edge, _ = host.split(".")
        return int(pod) * self.half + int(edge)

    def rack_name(self, rack: int) -> str:
        """Edge switch name of global rack index ``rack``."""
        return edge_name(rack // self.half, rack % self.half)

    def summary(self) -> dict[str, float]:
        """Headline structural quantities, handy in examples and docs."""
        return {
            "k": self.k,
            "pods": self.k,
            "edge_switches": self.k * self.half,
            "aggregation_switches": self.k * self.half,
            "core_switches": self.half * self.half,
            "hosts": self.num_hosts,
            "links": len(self.links),
            "oversubscription": self.oversubscription,
        }
