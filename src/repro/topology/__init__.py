"""Topology substrate: graph primitives and the four architectures compared
in the ShareBackup paper (fat-tree, F10, Aspen-style tree, 1:1 backup).

The ShareBackup topology itself — fat-tree plus circuit-switch layers and
backup switches — lives in :mod:`repro.core.sharebackup` because it is the
paper's contribution rather than a substrate.
"""

from .addressing import Address, FatTreeAddressPlan, Prefix, Suffix
from .aspen import AspenTree
from .base import (
    DEFAULT_LINK_CAPACITY,
    Level,
    Link,
    Node,
    NodeKind,
    Topology,
    TopologyError,
)
from .f10 import F10Tree
from .fattree import FatTree, agg_name, core_name, edge_name, host_name
from .onetoone import OneToOneBackupTree, is_shadow, shadow_name
from .validate import ValidationError, validate_fattree, validate_folded_clos

__all__ = [
    "Address",
    "AspenTree",
    "DEFAULT_LINK_CAPACITY",
    "F10Tree",
    "FatTree",
    "FatTreeAddressPlan",
    "Level",
    "Link",
    "Node",
    "NodeKind",
    "OneToOneBackupTree",
    "Prefix",
    "Suffix",
    "Topology",
    "TopologyError",
    "ValidationError",
    "agg_name",
    "core_name",
    "edge_name",
    "host_name",
    "is_shadow",
    "shadow_name",
    "validate_fattree",
    "validate_folded_clos",
]
