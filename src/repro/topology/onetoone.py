"""1:1 backup fat-tree — the brute-force alternative ShareBackup replaces.

Section 1 of the paper describes the classical hot-spare design:

    "Switches can keep a hot spare; hosts are multi-homed to the primary
    and the backup switches; and every link between two primary switches
    is duplicated by a mesh amongst them and their shadows."

This builder realises that design on top of a fat-tree:

* every packet switch ``S`` gets a shadow ``S'`` (name prefixed ``S1.``);
* every host is dual-homed to its edge switch and the edge's shadow;
* every switch–switch link ``(S, T)`` becomes the 4-link mesh
  ``(S,T), (S,T'), (S',T), (S',T')``.

The mesh lets any combination of primary/shadow switches carry the
original topology's paths, so a failed switch is replaced by its shadow
with zero bandwidth loss — at the cost of 2× the switches and 4× the
switch–switch links, which is what makes 1:1 backup cost ``4×`` a plain
fat-tree (Table 2).  The cost equations live in :mod:`repro.cost.models`;
this module exists so that the failover behaviour itself is runnable and
testable, not just priced.
"""

from __future__ import annotations

from .base import Node, NodeKind, Topology
from .fattree import FatTree

__all__ = ["OneToOneBackupTree", "shadow_name", "is_shadow"]

_SHADOW_PREFIX = "S1."


def shadow_name(switch: str) -> str:
    """Name of the shadow of ``switch``."""
    return _SHADOW_PREFIX + switch


def is_shadow(name: str) -> bool:
    return name.startswith(_SHADOW_PREFIX)


class OneToOneBackupTree(Topology):
    """A fat-tree where every packet switch has a fully-meshed hot spare.

    The class keeps a reference fat-tree (``self.base``) for structural
    queries and materialises the doubled topology in itself.  Failover is
    modelled by :meth:`active_instance`: a logical switch is served by its
    primary when up, otherwise by its shadow.
    """

    def __init__(
        self,
        k: int,
        hosts_per_edge: int | None = None,
        link_capacity: float = 10e9,
        name: str | None = None,
    ) -> None:
        super().__init__(name or f"one-to-one-k{k}")
        self.base = FatTree(
            k, hosts_per_edge=hosts_per_edge, link_capacity=link_capacity
        )
        self.k = k
        self.half = k // 2
        self.link_capacity = link_capacity
        self._build()

    def _build(self) -> None:
        base = self.base
        # Primaries and shadows.
        for node in base.nodes.values():
            self.add_node(
                Node(
                    node.name,
                    node.kind,
                    pod=node.pod,
                    index=node.index,
                    attrs=dict(node.attrs),
                )
            )
            if node.kind.is_packet_switch:
                self.add_node(
                    Node(
                        shadow_name(node.name),
                        node.kind,
                        pod=node.pod,
                        index=node.index,
                        is_backup=True,
                        attrs=dict(node.attrs),
                    )
                )
        # Links: host links are dual-homed, switch links become 4-meshes.
        for link in base.links.values():
            a_kind = base.nodes[link.a].kind
            b_kind = base.nodes[link.b].kind
            if a_kind is NodeKind.HOST or b_kind is NodeKind.HOST:
                host, sw = (
                    (link.a, link.b)
                    if a_kind is NodeKind.HOST
                    else (link.b, link.a)
                )
                self.add_link(host, sw, self.link_capacity)
                self.add_link(host, shadow_name(sw), self.link_capacity)
            else:
                self.add_link(link.a, link.b, self.link_capacity)
                self.add_link(link.a, shadow_name(link.b), self.link_capacity)
                self.add_link(shadow_name(link.a), link.b, self.link_capacity)
                self.add_link(
                    shadow_name(link.a), shadow_name(link.b), self.link_capacity
                )

    # ------------------------------------------------------------------
    # failover semantics
    # ------------------------------------------------------------------

    def active_instance(self, logical_switch: str) -> str | None:
        """The physical switch currently serving ``logical_switch``.

        Returns the primary when it is up, else the shadow when that is
        up, else ``None`` (both replicas dead — the logical switch is
        unrecoverable without repair).
        """
        if self.nodes[logical_switch].up:
            return logical_switch
        shadow = shadow_name(logical_switch)
        if self.nodes[shadow].up:
            return shadow
        return None

    def logical_path_operational(self, node_path: list[str]) -> bool:
        """Whether a *logical* fat-tree path survives under current failures.

        Each logical switch hop may be served by either replica; the mesh
        guarantees any replica mix is physically connected, so the path
        survives iff every logical hop has a live instance and the host
        links to the chosen edge instance are up.
        """
        physical: list[str] = []
        for hop in node_path:
            if hop in self.nodes and self.nodes[hop].kind is NodeKind.HOST:
                if not self.nodes[hop].up:
                    return False
                physical.append(hop)
                continue
            inst = self.active_instance(hop)
            if inst is None:
                return False
            physical.append(inst)
        for a, b in zip(physical, physical[1:]):
            if not self.operational_links_between(a, b):
                return False
        return True
