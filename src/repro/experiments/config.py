"""Experiment configuration shared by the failure-study pipelines.

One :class:`StudyConfig` describes everything a Figure 1 style experiment
needs: the fabric (k, oversubscription), the trace (coflow count, window,
size distribution), and the failure sampling plan.  The benchmark
harness instantiates it from its quick/full profiles; library users can
build their own (e.g. to replay the real coflow-benchmark trace loaded
via :mod:`repro.workload.traceio`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..topology.fattree import FatTree
from ..workload.coflow_trace import (
    CoflowTraceGenerator,
    WorkloadConfig,
    materialize_hosts,
)

__all__ = ["StudyConfig"]


@dataclass(frozen=True)
class StudyConfig:
    """Parameters of one failure-study run."""

    k: int = 8
    hosts_per_edge: int = 40  # 10:1 oversubscription at k=8
    num_coflows: int = 100
    duration: float = 15.0
    seed: int = 13
    failure_seed: int = 5
    failure_samples: int = 3
    #: Size-distribution overrides passed through to WorkloadConfig.
    long_flow_low: float = 2e8
    long_flow_high: float = 2e10
    long_flow_alpha: float = 1.1
    horizon: float = 100_000.0

    def __post_init__(self) -> None:
        if self.k < 4 or self.k % 2:
            raise ValueError(f"k must be even and >= 4, got {self.k}")
        if self.failure_samples < 1:
            raise ValueError("need at least one failure sample")

    @property
    def oversubscription(self) -> float:
        return self.hosts_per_edge / (self.k / 2)

    def build_tree(self, tree_cls=FatTree):
        return tree_cls(self.k, hosts_per_edge=self.hosts_per_edge)

    def workload_config(self, num_racks: int) -> WorkloadConfig:
        return WorkloadConfig(
            num_racks=num_racks,
            num_coflows=self.num_coflows,
            duration=self.duration,
            seed=self.seed,
            long_flow_low=self.long_flow_low,
            long_flow_high=self.long_flow_high,
            long_flow_alpha=self.long_flow_alpha,
        )

    def build_specs(self, tree):
        """The materialised coflow trace for ``tree`` (deterministic)."""
        cfg = self.workload_config(tree.num_racks)
        return materialize_hosts(CoflowTraceGenerator(cfg).generate(), tree)
