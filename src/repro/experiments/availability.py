"""Time-domain availability study (§5.1's argument, with repair dynamics).

The paper's capacity argument is a snapshot binomial: with device
unavailability ~1e-4, ``n`` spares per ``k/2``-switch group practically
never run out.  That treats failures as independent coin flips; in
reality a group's exposure depends on *temporal* dynamics — how long
repairs take, whether a second failure lands inside the first one's
repair window.  This study simulates exactly that:

* each switch of a group fails as a Poisson process with the model's
  MTBF and is repaired after a log-normal downtime (the model's "a few
  minutes" shape);
* the group has ``n`` spares; a failure with a free spare is covered
  (recovery is sub-millisecond — instantaneous on this timescale) and
  the spare is tied up until that switch's repair completes (at which
  point the repaired switch becomes the new spare — the no-switch-back
  policy);
* an *exposure episode* begins whenever a failure finds the pool empty
  and ends when a repair frees capacity again.

Outputs: exposure probability (fraction of time at least one slot is
dark), episodes per simulated year, and the comparison against the
binomial snapshot — they agree because failures are rare and repairs
short, which is itself the §5.1 claim made quantitative.
"""

from __future__ import annotations

import heapq
from dataclasses import asdict, dataclass

from ..failures.models import DEFAULT_FAILURE_MODEL, FailureModel
from ..rng import ensure_rng

__all__ = [
    "AvailabilityResult",
    "simulate_group_availability",
    "evaluate_availability_payload",
]

YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class AvailabilityResult:
    """Outcome of one group-level availability simulation."""

    group_size: int
    spares: int
    simulated_time: float
    failures: int
    exposure_episodes: int
    exposed_time: float

    @property
    def exposure_probability(self) -> float:
        """Fraction of time the group has more failures than spares."""
        return self.exposed_time / self.simulated_time

    @property
    def episodes_per_year(self) -> float:
        return self.exposure_episodes * YEAR / self.simulated_time

    @property
    def failures_per_switch_year(self) -> float:
        return self.failures * YEAR / (self.simulated_time * self.group_size)


def simulate_group_availability(
    group_size: int,
    spares: int,
    years: float = 50.0,
    model: FailureModel = DEFAULT_FAILURE_MODEL,
    seed: int = 0,
) -> AvailabilityResult:
    """Event-driven Monte Carlo of one failure group over ``years``.

    State: the number of concurrently-broken switches ``down``.  The
    group is *exposed* whenever ``down > spares`` (some logical slot has
    no serving hardware).  Failure arrivals form a Poisson process of
    rate ``group_size / MTBF`` (every serving slot keeps a switch in
    service — spares swap in instantly — so the failure-generating
    population is constant); each failure schedules its own repair.
    """
    if group_size < 1 or spares < 0:
        raise ValueError("need group_size >= 1 and spares >= 0")
    if years <= 0:
        raise ValueError("years must be positive")
    rng = ensure_rng(seed)
    horizon = years * YEAR
    failure_rate = group_size / model.mtbf

    now = 0.0
    down = 0
    failures = 0
    episodes = 0
    exposed_time = 0.0
    exposure_began: float | None = None
    repairs: list[float] = []  # heap of repair completion times

    next_failure = rng.exponential(1.0 / failure_rate)
    while True:
        next_repair = repairs[0] if repairs else float("inf")
        t = min(next_failure, next_repair)
        if t >= horizon:
            break
        now = t
        if next_failure <= next_repair:
            failures += 1
            down += 1
            heapq.heappush(repairs, now + model.sample_downtime(rng))
            if down == spares + 1:
                episodes += 1
                exposure_began = now
            next_failure = now + rng.exponential(1.0 / failure_rate)
        else:
            heapq.heappop(repairs)
            down -= 1
            if down == spares and exposure_began is not None:
                exposed_time += now - exposure_began
                exposure_began = None
    if exposure_began is not None:
        exposed_time += horizon - exposure_began

    return AvailabilityResult(
        group_size=group_size,
        spares=spares,
        simulated_time=horizon,
        failures=failures,
        exposure_episodes=episodes,
        exposed_time=exposed_time,
    )


def evaluate_availability_payload(payload: dict) -> dict:
    """One Monte Carlo point; the ``availability`` worker of :mod:`repro.runner`.

    Payload: ``group_size``, ``spares``, optional ``years`` and ``seed``,
    and optionally ``model`` (the :class:`FailureModel` fields).  The
    seed lives *in* the payload so the point is cacheable and
    reproducible regardless of which shard executes it.
    """
    model = (
        FailureModel(**payload["model"])
        if "model" in payload
        else DEFAULT_FAILURE_MODEL
    )
    result = simulate_group_availability(
        int(payload["group_size"]),
        int(payload["spares"]),
        years=float(payload.get("years", 50.0)),
        model=model,
        seed=int(payload.get("seed", 0)),
    )
    return asdict(result)
