"""The Figure 1(a)/(b) pipeline: affected fractions vs failure rate.

Pure library form of the sweep the benchmarks print: for each
architecture and each failure rate, sample scenarios, compute the
affected flow/coflow fractions on the pre-failure ECMP pins, and
aggregate.  Single-failure statistics (the paper's in-text 29.6% / 17%
points) are produced alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.metrics import affected_by_scenario
from ..failures.injector import FailureInjector
from ..routing.ecmp import EcmpSelector
from ..topology.f10 import F10Tree
from ..topology.fattree import FatTree
from .config import StudyConfig

__all__ = ["SweepPoint", "AffectedSweepResult", "AffectedSweepStudy"]

DEFAULT_RATES = (0.005, 0.01, 0.02, 0.03, 0.05)


@dataclass(frozen=True)
class SweepPoint:
    """One (rate, fractions) point, averaged over the scenario samples."""

    rate: float
    flow_fraction: float
    coflow_fraction: float

    @property
    def amplification(self) -> float:
        if self.flow_fraction == 0:
            return float("inf") if self.coflow_fraction else 1.0
        return self.coflow_fraction / self.flow_fraction


@dataclass(frozen=True)
class AffectedSweepResult:
    """One architecture's sweep plus its single-failure statistics."""

    architecture: str
    kind: str  # "node" | "link"
    points: tuple[SweepPoint, ...]
    single_failure_fractions: tuple[float, ...]  # coflow fractions

    @property
    def worst_single(self) -> float:
        return max(self.single_failure_fractions, default=0.0)

    @property
    def mean_single(self) -> float:
        if not self.single_failure_fractions:
            return 0.0
        return sum(self.single_failure_fractions) / len(self.single_failure_fractions)

    def table(self) -> str:
        lines = [
            f"[{self.architecture}] affected vs {self.kind} failure rate",
            f"{'rate':>8}{'flows':>10}{'coflows':>10}{'amplify':>10}",
        ]
        for p in self.points:
            lines.append(
                f"{p.rate:>8.3f}{p.flow_fraction:>10.3%}"
                f"{p.coflow_fraction:>10.3%}{p.amplification:>9.1f}x"
            )
        lines.append(
            f"single-{self.kind} failures: mean {self.mean_single:.1%}, "
            f"worst {self.worst_single:.1%} of coflows affected"
        )
        return "\n".join(lines)


class AffectedSweepStudy:
    """Runs the affected-fraction sweep for fat-tree and F10."""

    ARCHITECTURES = (("fat-tree", FatTree), ("f10", F10Tree))

    def __init__(self, config: StudyConfig, rates: tuple[float, ...] = DEFAULT_RATES):
        if any(not 0 < r <= 1 for r in rates):
            raise ValueError(f"rates must be in (0,1]: {rates}")
        self.config = config
        self.rates = rates

    def run(self, kind: str) -> dict[str, AffectedSweepResult]:
        """``kind`` is ``"node"`` (Fig 1a) or ``"link"`` (Fig 1b)."""
        if kind not in ("node", "link"):
            raise ValueError(f"kind must be node|link, got {kind!r}")
        cfg = self.config
        results: dict[str, AffectedSweepResult] = {}
        for arch, tree_cls in self.ARCHITECTURES:
            tree = cfg.build_tree(tree_cls)
            specs = cfg.build_specs(tree)
            selector = EcmpSelector(tree)
            injector = FailureInjector(tree, seed=cfg.failure_seed)
            points = []
            for rate in self.rates:
                flow_sum = coflow_sum = 0.0
                for _ in range(cfg.failure_samples):
                    scenario = (
                        injector.node_failures_at_rate(rate)
                        if kind == "node"
                        else injector.link_failures_at_rate(rate)
                    )
                    counts = affected_by_scenario(tree, specs, scenario, selector)
                    flow_sum += counts.flow_fraction
                    coflow_sum += counts.coflow_fraction
                points.append(
                    SweepPoint(
                        rate,
                        flow_sum / cfg.failure_samples,
                        coflow_sum / cfg.failure_samples,
                    )
                )
            singles = []
            for _ in range(max(6, cfg.failure_samples)):
                scenario = (
                    injector.single_node_failure()
                    if kind == "node"
                    else injector.single_link_failure()
                )
                singles.append(
                    affected_by_scenario(tree, specs, scenario, selector).coflow_fraction
                )
            results[arch] = AffectedSweepResult(
                architecture=arch,
                kind=kind,
                points=tuple(points),
                single_failure_fractions=tuple(singles),
            )
        return results
