"""The Figure 1(a)/(b) pipeline: affected fractions vs failure rate.

Pure library form of the sweep the benchmarks print: for each
architecture and each failure rate, sample scenarios, compute the
affected flow/coflow fractions on the pre-failure ECMP pins, and
aggregate.  Single-failure statistics (the paper's in-text 29.6% / 17%
points) are produced alongside.

The study is written in *plan / evaluate / aggregate* form so the sweep
runner (:mod:`repro.runner`) can execute it shard-parallel with results
bit-identical to the serial path:

* :meth:`AffectedSweepStudy.plan` pre-draws every failure scenario from
  the study's seeded injector — all randomness happens here, serially,
  so the scenario set is independent of how evaluation is scheduled;
* :func:`evaluate_affected_payload` measures one (architecture,
  scenario) pair from a JSON payload — a pure function, safe to run in
  any worker process and to cache by content;
* :meth:`AffectedSweepStudy.aggregate` folds the measurements back in
  plan order, using the same float arithmetic as the historical serial
  loop.

:meth:`AffectedSweepStudy.run` is simply plan → evaluate each in-process
→ aggregate.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import lru_cache

from ..analysis.metrics import affected_by_scenario
from ..failures.injector import FailureInjector, FailureScenario
from ..routing.ecmp import EcmpSelector
from ..topology.f10 import F10Tree
from ..topology.fattree import FatTree
from .config import StudyConfig

__all__ = [
    "SweepPoint",
    "AffectedSweepResult",
    "AffectedSweepStudy",
    "PlannedEvaluation",
    "evaluate_affected_payload",
]

DEFAULT_RATES = (0.005, 0.01, 0.02, 0.03, 0.05)

TREE_CLASSES = {"fat-tree": FatTree, "f10": F10Tree}


@dataclass(frozen=True)
class SweepPoint:
    """One (rate, fractions) point, averaged over the scenario samples."""

    rate: float
    flow_fraction: float
    coflow_fraction: float

    @property
    def amplification(self) -> float:
        if self.flow_fraction == 0:
            return float("inf") if self.coflow_fraction else 1.0
        return self.coflow_fraction / self.flow_fraction


@dataclass(frozen=True)
class AffectedSweepResult:
    """One architecture's sweep plus its single-failure statistics."""

    architecture: str
    kind: str  # "node" | "link"
    points: tuple[SweepPoint, ...]
    single_failure_fractions: tuple[float, ...]  # coflow fractions

    @property
    def worst_single(self) -> float:
        return max(self.single_failure_fractions, default=0.0)

    @property
    def mean_single(self) -> float:
        if not self.single_failure_fractions:
            return 0.0
        return sum(self.single_failure_fractions) / len(self.single_failure_fractions)

    def table(self) -> str:
        lines = [
            f"[{self.architecture}] affected vs {self.kind} failure rate",
            f"{'rate':>8}{'flows':>10}{'coflows':>10}{'amplify':>10}",
        ]
        for p in self.points:
            lines.append(
                f"{p.rate:>8.3f}{p.flow_fraction:>10.3%}"
                f"{p.coflow_fraction:>10.3%}{p.amplification:>9.1f}x"
            )
        lines.append(
            f"single-{self.kind} failures: mean {self.mean_single:.1%}, "
            f"worst {self.worst_single:.1%} of coflows affected"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class PlannedEvaluation:
    """One (architecture, scenario) measurement of an affected sweep."""

    task_id: str
    architecture: str
    kind: str  # "node" | "link"
    slot: str  # "rate" | "single"
    rate: float | None
    sample: int
    scenario: FailureScenario

    def payload(self, config: StudyConfig) -> dict:
        """The JSON-safe worker input (also the cache identity)."""
        return {
            "config": asdict(config),
            "architecture": self.architecture,
            "scenario": {
                "nodes": list(self.scenario.nodes),
                "links": list(self.scenario.links),
            },
        }


@lru_cache(maxsize=4)
def _evaluation_context(architecture: str, config_items: tuple):
    """(tree, specs, selector) for one architecture/config, memoised.

    Worker processes evaluate many scenarios of the same study; the
    fabric, trace, and ECMP pins are identical across them and dominate
    the cost, so they are built once per process.
    """
    config = StudyConfig(**dict(config_items))
    tree = config.build_tree(TREE_CLASSES[architecture])
    specs = config.build_specs(tree)
    return tree, specs, EcmpSelector(tree)


def evaluate_affected_payload(payload: dict) -> dict:
    """Measure one scenario; the ``affected`` worker of :mod:`repro.runner`.

    Returns raw integer counts (not fractions) so the result is exactly
    JSON-round-trippable and aggregation controls the float arithmetic.
    """
    tree, specs, selector = _evaluation_context(
        payload["architecture"], tuple(sorted(payload["config"].items()))
    )
    scenario = FailureScenario(
        nodes=tuple(payload["scenario"]["nodes"]),
        links=tuple(payload["scenario"]["links"]),
    )
    counts = affected_by_scenario(tree, specs, scenario, selector)
    return {
        "flows_total": counts.flows_total,
        "flows_affected": counts.flows_affected,
        "coflows_total": counts.coflows_total,
        "coflows_affected": counts.coflows_affected,
    }


class AffectedSweepStudy:
    """Runs the affected-fraction sweep for fat-tree and F10."""

    ARCHITECTURES = (("fat-tree", FatTree), ("f10", F10Tree))

    def __init__(self, config: StudyConfig, rates: tuple[float, ...] = DEFAULT_RATES):
        if any(not 0 < r <= 1 for r in rates):
            raise ValueError(f"rates must be in (0,1]: {rates}")
        self.config = config
        self.rates = rates

    # ------------------------------------------------------------------
    # plan / aggregate / run
    # ------------------------------------------------------------------

    def _check_kind(self, kind: str) -> None:
        if kind not in ("node", "link"):
            raise ValueError(f"kind must be node|link, got {kind!r}")

    def single_samples(self) -> int:
        return max(6, self.config.failure_samples)

    def plan(self, kind: str) -> list[PlannedEvaluation]:
        """Pre-draw every scenario of the sweep, in the canonical order.

        Per architecture: ``failure_samples`` scenarios per rate (the
        sweep curves), then the single-failure sample set — one seeded
        injector drawn in that fixed order, exactly as the serial loop
        always did, so the scenario set is a pure function of the
        config regardless of execution schedule.
        """
        self._check_kind(kind)
        cfg = self.config
        tasks: list[PlannedEvaluation] = []
        for arch, tree_cls in self.ARCHITECTURES:
            injector = FailureInjector(cfg.build_tree(tree_cls), seed=cfg.failure_seed)
            for rate_index, rate in enumerate(self.rates):
                for sample in range(cfg.failure_samples):
                    scenario = (
                        injector.node_failures_at_rate(rate)
                        if kind == "node"
                        else injector.link_failures_at_rate(rate)
                    )
                    tasks.append(
                        PlannedEvaluation(
                            task_id=(
                                f"affected/{kind}/{arch}"
                                f"/rate{rate_index}/s{sample}"
                            ),
                            architecture=arch,
                            kind=kind,
                            slot="rate",
                            rate=rate,
                            sample=sample,
                            scenario=scenario,
                        )
                    )
            for sample in range(self.single_samples()):
                scenario = (
                    injector.single_node_failure()
                    if kind == "node"
                    else injector.single_link_failure()
                )
                tasks.append(
                    PlannedEvaluation(
                        task_id=f"affected/{kind}/{arch}/single/s{sample}",
                        architecture=arch,
                        kind=kind,
                        slot="single",
                        rate=None,
                        sample=sample,
                        scenario=scenario,
                    )
                )
        return tasks

    def aggregate(self, kind: str, outcomes: dict) -> dict[str, AffectedSweepResult]:
        """Fold per-task counts back into per-architecture results.

        ``outcomes`` maps task id → the dict returned by
        :func:`evaluate_affected_payload`.  Accumulation order and
        arithmetic match the historical serial loop exactly, so a
        parallel run aggregates to bit-identical floats.
        """
        self._check_kind(kind)
        cfg = self.config

        def fractions(task_id: str) -> tuple[float, float]:
            c = outcomes[task_id]
            flows = c["flows_affected"] / c["flows_total"] if c["flows_total"] else 0.0
            coflows = (
                c["coflows_affected"] / c["coflows_total"]
                if c["coflows_total"]
                else 0.0
            )
            return flows, coflows

        results: dict[str, AffectedSweepResult] = {}
        for arch, _ in self.ARCHITECTURES:
            points = []
            for rate_index, rate in enumerate(self.rates):
                flow_sum = coflow_sum = 0.0
                for sample in range(cfg.failure_samples):
                    flows, coflows = fractions(
                        f"affected/{kind}/{arch}/rate{rate_index}/s{sample}"
                    )
                    flow_sum += flows
                    coflow_sum += coflows
                points.append(
                    SweepPoint(
                        rate,
                        flow_sum / cfg.failure_samples,
                        coflow_sum / cfg.failure_samples,
                    )
                )
            singles = [
                fractions(f"affected/{kind}/{arch}/single/s{sample}")[1]
                for sample in range(self.single_samples())
            ]
            results[arch] = AffectedSweepResult(
                architecture=arch,
                kind=kind,
                points=tuple(points),
                single_failure_fractions=tuple(singles),
            )
        return results

    def run(self, kind: str) -> dict[str, AffectedSweepResult]:
        """``kind`` is ``"node"`` (Fig 1a) or ``"link"`` (Fig 1b)."""
        plan = self.plan(kind)
        outcomes = {
            task.task_id: evaluate_affected_payload(task.payload(self.config))
            for task in plan
        }
        return self.aggregate(kind, outcomes)
