"""The Figure 1(c) pipeline: CCT slowdown distributions under single failures.

Library form of the heavy benchmark: per architecture, one clean
baseline replay plus one replay per failure scenario, each compared
coflow-by-coflow.  ShareBackup runs through its control-plane adapter
(so recovery latency, spare exhaustion etc. are in the loop); the
rerouting architectures run their routers.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass

from ..analysis.cdf import percentile
from ..analysis.metrics import cct_slowdowns
from ..core.sharebackup import ShareBackupNetwork
from ..core.simadapter import ShareBackupSimulation
from ..failures.injector import FailureInjector, FailureScenario
from ..routing.ecmp import EcmpSelector
from ..routing.reroute_f10 import F10LocalRerouteRouter
from ..routing.reroute_global import GlobalOptimalRerouteRouter
from ..simulation.engine import FluidSimulation
from ..topology.base import NodeKind
from ..topology.f10 import F10Tree
from ..topology.fattree import FatTree
from .config import StudyConfig

__all__ = ["SlowdownDigest", "SlowdownStudy", "hottest_pod"]


def hottest_pod(specs, tree) -> int:
    """Pod with the largest outbound (inter-pod) byte demand."""
    pod_bytes: dict[int, float] = defaultdict(float)
    for coflow in specs:
        for flow in coflow.flows:
            src_pod = int(flow.src.split(".")[1])
            dst_pod = int(flow.dst.split(".")[1])
            if src_pod != dst_pod:
                pod_bytes[src_pod] += flow.size_bytes
    return max(pod_bytes, key=pod_bytes.get)


@dataclass(frozen=True)
class SlowdownDigest:
    """Summary of one architecture's slowdown sample."""

    architecture: str
    slowdowns: tuple[float, ...]

    @property
    def finite(self) -> tuple[float, ...]:
        return tuple(v for v in self.slowdowns if math.isfinite(v))

    @property
    def never_finished(self) -> int:
        return len(self.slowdowns) - len(self.finite)

    def row(self) -> str:
        finite = self.finite
        if not finite:
            return (
                f"{self.architecture:<26} n={len(self.slowdowns):<5} "
                f"(all {self.never_finished} never finished)"
            )
        return (
            f"{self.architecture:<26} n={len(self.slowdowns):<5} "
            f"median={percentile(finite, 50):6.2f}x  "
            f"p90={percentile(finite, 90):6.2f}x  "
            f"p99={percentile(finite, 99):6.2f}x  "
            f"max={max(finite):7.2f}x  never-finished={self.never_finished}"
        )


class SlowdownStudy:
    """Runs the CCT-slowdown comparison across the three architectures."""

    def __init__(self, config: StudyConfig):
        self.config = config

    # ------------------------------------------------------------------

    def scenarios(self, tree, specs) -> list[FailureScenario]:
        """Single-failure sample set: the hottest pod's aggregation switch,
        random agg/core switches, and one agg–core link."""
        out = [FailureScenario(nodes=(f"A.{hottest_pod(specs, tree)}.1",))]
        injector = FailureInjector(
            tree,
            seed=self.config.failure_seed,
            switch_kinds=(NodeKind.AGGREGATION, NodeKind.CORE),
        )
        for _ in range(max(1, self.config.failure_samples - 1)):
            out.append(injector.single_node_failure())
        link = tree.links_between("A.0.0", "C.0")[0]
        out.append(FailureScenario(links=(link.link_id,)))
        return out

    def affected_ids(self, tree, specs, scenario) -> list[int]:
        selector = EcmpSelector(tree)
        failed_nodes = set(scenario.nodes)
        failed_links = set(scenario.links)
        out = []
        for coflow in specs:
            for flow in coflow.flows:
                path = selector.select(flow.src, flow.dst, flow.flow_id)
                if path is None:
                    continue
                hit = bool(failed_nodes.intersection(path.nodes))
                if not hit and failed_links:
                    hit = any(
                        seg.link_id in failed_links
                        for seg in path.segments(tree, flow.flow_id)
                    )
                if hit:
                    out.append(coflow.coflow_id)
                    break
        return out

    # ------------------------------------------------------------------

    def run_rerouting(self, architecture: str) -> SlowdownDigest:
        tree_cls, router_cls = {
            "fat-tree": (FatTree, GlobalOptimalRerouteRouter),
            "f10": (F10Tree, F10LocalRerouteRouter),
        }[architecture]
        cfg = self.config
        baseline_tree = cfg.build_tree(tree_cls)
        specs = cfg.build_specs(baseline_tree)
        baseline = FluidSimulation(
            baseline_tree, router_cls(baseline_tree), specs, horizon=cfg.horizon
        ).run()

        slowdowns: list[float] = []
        for scenario in self.scenarios(cfg.build_tree(tree_cls), specs):
            tree = cfg.build_tree(tree_cls)
            sim = FluidSimulation(tree, router_cls(tree), specs, horizon=cfg.horizon)
            for node in scenario.nodes:
                sim.fail_node_at(0.0, node)
            for link_id in scenario.links:
                sim.fail_link_at(0.0, link_id)
            report = cct_slowdowns(
                baseline, sim.run(), self.affected_ids(tree, specs, scenario)
            )
            slowdowns.extend(report.affected_slowdowns())
        return SlowdownDigest(architecture, tuple(slowdowns))

    def run_sharebackup(
        self, victims: tuple[str, ...] = ("A.0.1", "E.0.0")
    ) -> SlowdownDigest:
        cfg = self.config
        net = ShareBackupNetwork(cfg.k, n=1)
        specs = cfg.build_specs(net.logical)
        plain = FatTree(cfg.k)
        baseline = FluidSimulation(
            plain, GlobalOptimalRerouteRouter(plain), specs, horizon=cfg.horizon
        ).run()
        slowdowns: list[float] = []
        for victim in victims:
            fresh = ShareBackupNetwork(cfg.k, n=1)
            sbs = ShareBackupSimulation(fresh, specs, horizon=cfg.horizon)
            sbs.inject_switch_failure(0.0, victim)
            report = cct_slowdowns(baseline, sbs.run())
            slowdowns.extend(report.all_slowdowns())
        return SlowdownDigest("sharebackup", tuple(slowdowns))

    def run(self) -> dict[str, SlowdownDigest]:
        return {
            "fat-tree/global": self.run_rerouting("fat-tree"),
            "f10/local": self.run_rerouting("f10"),
            "sharebackup": self.run_sharebackup(),
        }
