"""The Figure 1(c) pipeline: CCT slowdown distributions under single failures.

Library form of the heavy benchmark: per architecture, one clean
baseline replay plus one replay per failure scenario, each compared
coflow-by-coflow.  ShareBackup runs through its control-plane adapter
(so recovery latency, spare exhaustion etc. are in the loop); the
rerouting architectures run their routers.

Like :mod:`repro.experiments.affected`, the study is in *plan /
evaluate / aggregate* form for the sweep runner: scenarios are pre-drawn
serially in :meth:`SlowdownStudy.plan`, each scenario replay is the pure
function :func:`evaluate_slowdown_payload` (one fluid simulation — the
unit of parallelism and of caching), and :meth:`SlowdownStudy.aggregate`
concatenates the per-scenario slowdown samples in plan order.  The
clean-baseline replay each scenario compares against is memoised per
worker process, so a pool of N workers pays for at most N baseline runs
per architecture and a warm cache pays for none.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import asdict, dataclass
from functools import lru_cache

from ..analysis.cdf import percentile
from ..analysis.metrics import cct_slowdowns
from ..core.sharebackup import ShareBackupNetwork
from ..core.simadapter import ShareBackupSimulation
from ..failures.injector import FailureInjector, FailureScenario
from ..routing.ecmp import EcmpSelector
from ..routing.reroute_f10 import F10LocalRerouteRouter
from ..routing.reroute_global import GlobalOptimalRerouteRouter
from ..simulation.engine import FluidSimulation
from ..topology.base import NodeKind
from ..topology.f10 import F10Tree
from ..topology.fattree import FatTree
from .config import StudyConfig

__all__ = [
    "SlowdownDigest",
    "SlowdownStudy",
    "PlannedReplay",
    "evaluate_slowdown_payload",
    "hottest_pod",
]

_REROUTING = {
    "fat-tree": (FatTree, GlobalOptimalRerouteRouter),
    "f10": (F10Tree, F10LocalRerouteRouter),
}

_DIGEST_LABELS = {"fat-tree": "fat-tree/global", "f10": "f10/local"}


def hottest_pod(specs, tree) -> int:
    """Pod with the largest outbound (inter-pod) byte demand."""
    pod_bytes: dict[int, float] = defaultdict(float)
    for coflow in specs:
        for flow in coflow.flows:
            src_pod = int(flow.src.split(".")[1])
            dst_pod = int(flow.dst.split(".")[1])
            if src_pod != dst_pod:
                pod_bytes[src_pod] += flow.size_bytes
    return max(pod_bytes, key=pod_bytes.get)


def affected_coflow_ids(tree, specs, scenario, selector=None) -> list[int]:
    """Coflows whose pre-failure ECMP pins cross the scenario."""
    selector = selector or EcmpSelector(tree)
    failed_nodes = set(scenario.nodes)
    failed_links = set(scenario.links)
    out = []
    for coflow in specs:
        for flow in coflow.flows:
            path = selector.select(flow.src, flow.dst, flow.flow_id)
            if path is None:
                continue
            hit = bool(failed_nodes.intersection(path.nodes))
            if not hit and failed_links:
                hit = any(
                    seg.link_id in failed_links
                    for seg in path.segments(tree, flow.flow_id)
                )
            if hit:
                out.append(coflow.coflow_id)
                break
    return out


@dataclass(frozen=True)
class SlowdownDigest:
    """Summary of one architecture's slowdown sample."""

    architecture: str
    slowdowns: tuple[float, ...]

    @property
    def finite(self) -> tuple[float, ...]:
        return tuple(v for v in self.slowdowns if math.isfinite(v))

    @property
    def never_finished(self) -> int:
        return len(self.slowdowns) - len(self.finite)

    def row(self) -> str:
        finite = self.finite
        if not finite:
            return (
                f"{self.architecture:<26} n={len(self.slowdowns):<5} "
                f"(all {self.never_finished} never finished)"
            )
        return (
            f"{self.architecture:<26} n={len(self.slowdowns):<5} "
            f"median={percentile(finite, 50):6.2f}x  "
            f"p90={percentile(finite, 90):6.2f}x  "
            f"p99={percentile(finite, 99):6.2f}x  "
            f"max={max(finite):7.2f}x  never-finished={self.never_finished}"
        )


@dataclass(frozen=True)
class PlannedReplay:
    """One failure replay: a rerouting scenario or a ShareBackup victim."""

    task_id: str
    architecture: str  # "fat-tree" | "f10" | "sharebackup"
    scenario: FailureScenario | None  # rerouting replays
    victim: str | None  # sharebackup replays

    def payload(self, config: StudyConfig) -> dict:
        payload = {"config": asdict(config), "architecture": self.architecture}
        if self.architecture == "sharebackup":
            payload["victim"] = self.victim
        else:
            payload["scenario"] = {
                "nodes": list(self.scenario.nodes),
                "links": list(self.scenario.links),
            }
        return payload


# ----------------------------------------------------------------------
# worker-side evaluation (pure in the payload; baselines memoised)
# ----------------------------------------------------------------------


@lru_cache(maxsize=4)
def _rerouting_context(architecture: str, config_items: tuple):
    """(config, specs, baseline result) for one rerouting architecture."""
    config = StudyConfig(**dict(config_items))
    tree_cls, router_cls = _REROUTING[architecture]
    baseline_tree = config.build_tree(tree_cls)
    specs = config.build_specs(baseline_tree)
    baseline = FluidSimulation(
        baseline_tree, router_cls(baseline_tree), specs, horizon=config.horizon
    ).run()
    return config, specs, baseline


@lru_cache(maxsize=4)
def _sharebackup_context(config_items: tuple):
    """(config, specs, plain-fat-tree baseline result) for ShareBackup."""
    config = StudyConfig(**dict(config_items))
    net = ShareBackupNetwork(config.k, n=1)
    specs = config.build_specs(net.logical)
    plain = FatTree(config.k)
    baseline = FluidSimulation(
        plain, GlobalOptimalRerouteRouter(plain), specs, horizon=config.horizon
    ).run()
    return config, specs, baseline


def evaluate_slowdown_payload(payload: dict) -> dict:
    """Replay one failure; the ``slowdown`` worker of :mod:`repro.runner`.

    Returns ``{"slowdowns": [...]}`` — the per-coflow slowdown samples
    this replay contributes to its architecture's distribution
    (``inf`` marks coflows that never finished under the failure).
    """
    architecture = payload["architecture"]
    config_items = tuple(sorted(payload["config"].items()))

    if architecture == "sharebackup":
        config, specs, baseline = _sharebackup_context(config_items)
        net = ShareBackupNetwork(config.k, n=1)
        sim = ShareBackupSimulation(net, specs, horizon=config.horizon)
        sim.inject_switch_failure(0.0, payload["victim"])
        report = cct_slowdowns(baseline, sim.run())
        return {"slowdowns": report.all_slowdowns()}

    config, specs, baseline = _rerouting_context(architecture, config_items)
    tree_cls, router_cls = _REROUTING[architecture]
    scenario = FailureScenario(
        nodes=tuple(payload["scenario"]["nodes"]),
        links=tuple(payload["scenario"]["links"]),
    )
    tree = config.build_tree(tree_cls)
    sim = FluidSimulation(tree, router_cls(tree), specs, horizon=config.horizon)
    for node in scenario.nodes:
        sim.fail_node_at(0.0, node)
    for link_id in scenario.links:
        sim.fail_link_at(0.0, link_id)
    report = cct_slowdowns(
        baseline, sim.run(), affected_coflow_ids(tree, specs, scenario)
    )
    return {"slowdowns": report.affected_slowdowns()}


class SlowdownStudy:
    """Runs the CCT-slowdown comparison across the three architectures."""

    DEFAULT_VICTIMS = ("A.0.1", "E.0.0")

    def __init__(
        self,
        config: StudyConfig,
        victims: tuple[str, ...] = DEFAULT_VICTIMS,
    ):
        self.config = config
        self.victims = victims

    # ------------------------------------------------------------------

    def scenarios(self, tree, specs) -> list[FailureScenario]:
        """Single-failure sample set: the hottest pod's aggregation switch,
        random agg/core switches, and one agg–core link."""
        out = [FailureScenario(nodes=(f"A.{hottest_pod(specs, tree)}.1",))]
        injector = FailureInjector(
            tree,
            seed=self.config.failure_seed,
            switch_kinds=(NodeKind.AGGREGATION, NodeKind.CORE),
        )
        for _ in range(max(1, self.config.failure_samples - 1)):
            out.append(injector.single_node_failure())
        link = tree.links_between("A.0.0", "C.0")[0]
        out.append(FailureScenario(links=(link.link_id,)))
        return out

    def affected_ids(self, tree, specs, scenario) -> list[int]:
        return affected_coflow_ids(tree, specs, scenario)

    # ------------------------------------------------------------------
    # plan / aggregate / run
    # ------------------------------------------------------------------

    def _plan_rerouting(self, architecture: str) -> list[PlannedReplay]:
        tree_cls, _ = _REROUTING[architecture]
        tree = self.config.build_tree(tree_cls)
        specs = self.config.build_specs(tree)
        return [
            PlannedReplay(
                task_id=f"slowdown/{architecture}/s{index}",
                architecture=architecture,
                scenario=scenario,
                victim=None,
            )
            for index, scenario in enumerate(self.scenarios(tree, specs))
        ]

    def _plan_sharebackup(self, victims: tuple[str, ...]) -> list[PlannedReplay]:
        return [
            PlannedReplay(
                task_id=f"slowdown/sharebackup/{victim}",
                architecture="sharebackup",
                scenario=None,
                victim=victim,
            )
            for victim in victims
        ]

    def plan(self) -> list[PlannedReplay]:
        """Every replay of the study, in the canonical aggregation order."""
        tasks: list[PlannedReplay] = []
        for architecture in _REROUTING:
            tasks.extend(self._plan_rerouting(architecture))
        tasks.extend(self._plan_sharebackup(self.victims))
        return tasks

    def aggregate(
        self, plan: list[PlannedReplay], outcomes: dict
    ) -> dict[str, SlowdownDigest]:
        """Concatenate per-replay samples into per-architecture digests."""
        samples: dict[str, list[float]] = defaultdict(list)
        for task in plan:
            samples[task.architecture].extend(outcomes[task.task_id]["slowdowns"])
        return {
            _DIGEST_LABELS.get(arch, arch): SlowdownDigest(arch, tuple(values))
            for arch, values in samples.items()
        }

    def _run_plan(self, plan: list[PlannedReplay]) -> dict[str, SlowdownDigest]:
        outcomes = {
            task.task_id: evaluate_slowdown_payload(task.payload(self.config))
            for task in plan
        }
        return self.aggregate(plan, outcomes)

    def run_rerouting(self, architecture: str) -> SlowdownDigest:
        if architecture not in _REROUTING:
            raise KeyError(architecture)
        plan = self._plan_rerouting(architecture)
        return self._run_plan(plan)[_DIGEST_LABELS[architecture]]

    def run_sharebackup(
        self, victims: tuple[str, ...] = DEFAULT_VICTIMS
    ) -> SlowdownDigest:
        plan = self._plan_sharebackup(victims)
        return self._run_plan(plan)["sharebackup"]

    def run(self) -> dict[str, SlowdownDigest]:
        return self._run_plan(self.plan())
