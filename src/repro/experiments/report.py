"""Rendering helpers for experiment outputs: text tables and CSV series.

The benchmark harness writes both a human-readable ``.txt`` (what the
paper's figure shows) and a machine-readable ``.csv`` per artifact, so
downstream plotting (matplotlib, gnuplot, spreadsheets) needs no parsing
of the pretty tables.
"""

from __future__ import annotations

import csv
import io
import math
from collections.abc import Iterable, Mapping, Sequence

from ..analysis.cdf import empirical_cdf

__all__ = ["csv_table", "series_to_csv", "cdf_to_csv", "cdf_text"]


def csv_table(header: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A CSV document from a header and row iterable."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    for row in rows:
        writer.writerow(list(row))
    return buffer.getvalue()


def series_to_csv(series: Mapping[str, Sequence[tuple[float, float]]],
                  x_name: str = "x", y_name: str = "y") -> str:
    """Long-form CSV (``series,x,y``) from named (x, y) series."""
    rows = [
        (name, x, y)
        for name in sorted(series)
        for x, y in series[name]
    ]
    return csv_table(["series", x_name, y_name], rows)


def cdf_to_csv(values: Sequence[float], label: str = "value") -> str:
    """Empirical CDF as CSV; infinities are emitted as the string ``inf``."""
    xs, ps = empirical_cdf(values)
    rows = [("inf" if math.isinf(x) else x, p) for x, p in zip(xs, ps)]
    return csv_table([label, "cumulative_probability"], rows)


def cdf_text(values: Sequence[float], points: int = 12, unit: str = "x") -> str:
    """A terminal-friendly CDF sampling (used in the .txt artifacts)."""
    finite = sorted(v for v in values if math.isfinite(v))
    if not finite:
        return "  (no finite samples)"
    xs, ps = empirical_cdf(finite)
    step = max(1, len(xs) // points)
    sampled = list(zip(xs, ps))[::step]
    if sampled[-1] != (xs[-1], ps[-1]):
        sampled.append((xs[-1], ps[-1]))
    return "\n".join(f"    {x:9.3f}{unit}  P<= {p:6.1%}" for x, p in sampled)
