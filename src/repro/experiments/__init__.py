"""Experiment pipelines: the paper's evaluation as reusable library code.

The benchmark harness under ``benchmarks/`` is a thin shell over these —
each study can equally be driven from a notebook or the CLI, including
against the real coflow-benchmark trace loaded via
:func:`repro.workload.load_coflow_benchmark`.
"""

from .affected import (
    AffectedSweepResult,
    AffectedSweepStudy,
    SweepPoint,
    evaluate_affected_payload,
)
from .availability import (
    AvailabilityResult,
    evaluate_availability_payload,
    simulate_group_availability,
)
from .config import StudyConfig
from .report import cdf_text, cdf_to_csv, csv_table, series_to_csv
from .slowdown import (
    SlowdownDigest,
    SlowdownStudy,
    evaluate_slowdown_payload,
    hottest_pod,
)

__all__ = [
    "AffectedSweepResult",
    "AffectedSweepStudy",
    "AvailabilityResult",
    "simulate_group_availability",
    "SlowdownDigest",
    "SlowdownStudy",
    "StudyConfig",
    "SweepPoint",
    "cdf_text",
    "cdf_to_csv",
    "csv_table",
    "evaluate_affected_payload",
    "evaluate_availability_payload",
    "evaluate_slowdown_payload",
    "hottest_pod",
    "series_to_csv",
]
