"""The shared retry policy: bounded exponential backoff with optional jitter.

Two very different layers of the reproduction retry operations:

* :class:`~repro.runner.executor.SweepRunner` retries crashed or hung
  *shards* of a parallel sweep (real wall-clock sleeps between pool
  attempts);
* :class:`~repro.core.controller.ShareBackupController` retries *circuit
  switch reconfigurations* that fail transiently (simulated time — the
  backoff is charged to the recovery latency, never slept).

Both used to hard-code their own ``max_retries``/``backoff`` constants;
:class:`RetryPolicy` is the one shared description of "how hard to try",
so chaos campaigns and sweep orchestration are tuned with the same
vocabulary.  Jitter, when enabled, is drawn through :mod:`repro.rng`
(never the module-global ``random``), keeping retried schedules exactly
reproducible from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from .rng import ensure_rng

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff.

    Attributes:
        max_retries: attempts *beyond* the first (``0`` = try once).
        backoff_base: delay before retry 0, in seconds.
        backoff_factor: multiplier per subsequent retry (``base * f**i``).
        max_backoff: optional cap on any single delay.
        jitter: fractional spread applied to each delay — a delay ``d``
            becomes uniform in ``[d * (1 - jitter), d * (1 + jitter)]``.
            Requires an ``rng`` at :meth:`delay` time; with no rng the
            delay is deterministic (jitter silently off).
    """

    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    max_backoff: float | None = None
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base < 0:
            raise ValueError(f"backoff_base must be >= 0, got {self.backoff_base}")
        if self.backoff_factor <= 0:
            raise ValueError(
                f"backoff_factor must be positive, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be within [0, 1], got {self.jitter}")

    @property
    def total_attempts(self) -> int:
        """First attempt plus every allowed retry."""
        return self.max_retries + 1

    def delay(
        self,
        attempt: int,
        rng: int | None | np.random.Generator | random.Random = None,
    ) -> float:
        """Backoff before retry ``attempt`` (0-based), jittered via ``rng``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        base = self.backoff_base * self.backoff_factor**attempt
        if self.max_backoff is not None:
            base = min(base, self.max_backoff)
        if self.jitter and rng is not None:
            gen = ensure_rng(rng)
            base *= 1.0 + self.jitter * float(gen.uniform(-1.0, 1.0))
        return max(0.0, base)

    def schedule(
        self,
        rng: int | None | np.random.Generator | random.Random = None,
    ) -> tuple[float, ...]:
        """Every backoff delay of a fully exhausted retry ladder, in order."""
        gen = ensure_rng(rng) if rng is not None else None
        return tuple(self.delay(i, rng=gen) for i in range(self.max_retries))
