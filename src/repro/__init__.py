"""repro — a full reproduction of *Stop Rerouting! Enabling ShareBackup for
Failure Recovery in Data Center Networks* (Xia, Huang, Ng — HotNets'17).

Package map:

* :mod:`repro.core` — **ShareBackup itself**: the circuit-switched
  backup-sharing architecture, its controller, offline failure
  diagnosis, live impersonation, and recovery-latency model.
* :mod:`repro.topology` — fat-tree, F10's AB fat-tree, Aspen-style
  duplicated tree, 1:1 backup tree.
* :mod:`repro.routing` — two-level fat-tree routing, ECMP, and the
  rerouting baselines (global-optimal, F10 local).
* :mod:`repro.simulation` — flow-level max-min-fair discrete-event
  simulator.
* :mod:`repro.workload` — synthetic coflow traces in the image of the
  Facebook coflow benchmark.
* :mod:`repro.failures` — failure statistics and scenario injection.
* :mod:`repro.cost` — Table 2 cost equations and Figure 5 curves.
* :mod:`repro.analysis` — affected-flow/coflow metrics, CCT slowdown,
  and the measured Table 3 characteristics probe.
* :mod:`repro.experiments` — the Figure 1 / §5.1 study pipelines
  (plan → evaluate → aggregate).
* :mod:`repro.runner` — parallel scenario-sweep orchestration: result
  caching, fault tolerance, and a JSONL run journal (``docs/runner.md``).
* :mod:`repro.chaos` — control-plane fault injection: seeded chaos
  campaigns against the recovery machinery itself (``docs/chaos.md``).
* :mod:`repro.retry` — the shared :class:`~repro.retry.RetryPolicy`
  used by the sweep runner and the controller's circuit retries.
* :mod:`repro.rng` — explicit seed plumbing (``ensure_rng``,
  ``derive_seed``); the single place randomness enters the system.

Quick taste (see ``examples/quickstart.py`` for the narrated version)::

    from repro.core import ShareBackupNetwork, ShareBackupController

    net = ShareBackupNetwork(k=8, n=1)
    controller = ShareBackupController(net)
    report = controller.handle_node_failure("A.0.1")
    print(report.replaced, report.recovery_time)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "chaos",
    "core",
    "cost",
    "experiments",
    "failures",
    "retry",
    "rng",
    "routing",
    "runner",
    "simulation",
    "topology",
    "workload",
]
