"""Routing-table primitives: two-level (prefix + suffix) tables and packets.

Fat-tree's Two-Level Routing (Al-Fares et al., SIGCOMM'08) gives every
switch a small static table:

* *primary* entries match a **prefix** of the destination address and
  terminate the lookup (downward routing toward a pod/subnet);
* a prefix entry may instead *fall through* to a secondary table of
  **suffix** entries that match the host id octet, spreading upward
  traffic across the redundant parents (this is how fat-tree load
  balances without per-flow state).

ShareBackup's live impersonation (Section 4.3 of the paper) extends the
same structure with a VLAN id match so that one physical switch can hold
the tables of every switch in its failure group simultaneously; the
:class:`RoutingTable` here therefore supports an optional VLAN dimension,
and :mod:`repro.core.impersonation` builds the combined tables on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..topology.addressing import Address, Prefix, Suffix

__all__ = [
    "Packet",
    "PrefixEntry",
    "SuffixEntry",
    "RoutingTable",
    "LookupMiss",
]


class LookupMiss(Exception):
    """No routing entry matched the packet."""


@dataclass
class Packet:
    """The fields routing cares about; payload is irrelevant here.

    ``vlan`` is used by ShareBackup's impersonation: hosts tag outgoing
    packets with the VLAN id of their edge switch so the combined table on
    any switch of the failure group selects the right per-switch entries.
    """

    src: Address
    dst: Address
    vlan: Optional[int] = None
    flow_label: int = 0  # stands in for the transport 5-tuple in ECMP hashing

    def __str__(self) -> str:
        tag = f" vlan={self.vlan}" if self.vlan is not None else ""
        return f"[{self.src} -> {self.dst}{tag}]"


@dataclass(frozen=True)
class PrefixEntry:
    """A primary-table entry.

    ``port`` is the egress port name (we use neighbour node names as port
    names throughout — each fat-tree link is uniquely identified by its
    endpoints).  ``terminating`` entries forward immediately; a
    non-terminating entry (the ``0.0.0.0/0`` catch-all in the original
    design) defers to the suffix table.  ``vlan`` restricts the entry to
    packets carrying that tag (``None`` matches untagged and any tag).
    """

    prefix: Prefix
    port: Optional[str] = None
    terminating: bool = True
    vlan: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        if self.vlan is not None and packet.vlan != self.vlan:
            return False
        return self.prefix.matches(packet.dst)


@dataclass(frozen=True)
class SuffixEntry:
    """A secondary-table entry matching the trailing host-id octet."""

    suffix: Suffix
    port: str
    vlan: Optional[int] = None

    def matches(self, packet: Packet) -> bool:
        if self.vlan is not None and packet.vlan != self.vlan:
            return False
        return self.suffix.matches(packet.dst)


class RoutingTable:
    """A two-level routing table with longest-prefix-first semantics.

    Lookup order (matching the hardware TCAM model of the original
    design): the most specific matching prefix entry wins; when it is
    non-terminating, the suffix table is consulted.  Entries carrying a
    VLAN id are more specific than untagged ones at equal prefix length —
    that tie-break is what makes ShareBackup's combined edge tables work,
    because two edge switches of one pod share their in-bound prefixes but
    differ in VLAN-tagged out-bound entries.
    """

    def __init__(self, owner: str = "") -> None:
        self.owner = owner
        self.prefix_entries: list[PrefixEntry] = []
        self.suffix_entries: list[SuffixEntry] = []

    # -- construction ----------------------------------------------------

    def add_prefix(
        self,
        prefix: Prefix,
        port: Optional[str],
        terminating: bool = True,
        vlan: Optional[int] = None,
    ) -> None:
        entry = PrefixEntry(prefix, port, terminating, vlan)
        if not terminating and port is not None:
            raise ValueError("non-terminating entries must not carry a port")
        if terminating and port is None:
            raise ValueError("terminating entries need a port")
        self.prefix_entries.append(entry)
        # Longest prefix first; VLAN-tagged before untagged at equal length.
        self.prefix_entries.sort(
            key=lambda e: (e.prefix.length, e.vlan is not None), reverse=True
        )

    def add_suffix(self, suffix: Suffix, port: str, vlan: Optional[int] = None) -> None:
        self.suffix_entries.append(SuffixEntry(suffix, port, vlan))
        self.suffix_entries.sort(
            key=lambda e: (e.suffix.length, e.vlan is not None), reverse=True
        )

    def merge(self, other: "RoutingTable") -> None:
        """Union this table with ``other`` (duplicates are dropped).

        Used by impersonation to combine the tables of a failure group.
        """
        for entry in other.prefix_entries:
            if entry not in self.prefix_entries:
                self.prefix_entries.append(entry)
        for sentry in other.suffix_entries:
            if sentry not in self.suffix_entries:
                self.suffix_entries.append(sentry)
        self.prefix_entries.sort(
            key=lambda e: (e.prefix.length, e.vlan is not None), reverse=True
        )
        self.suffix_entries.sort(
            key=lambda e: (e.suffix.length, e.vlan is not None), reverse=True
        )

    # -- lookup ----------------------------------------------------------

    def lookup(self, packet: Packet) -> str:
        """Return the egress port for ``packet`` or raise :class:`LookupMiss`."""
        for entry in self.prefix_entries:
            if entry.matches(packet):
                if entry.terminating:
                    assert entry.port is not None
                    return entry.port
                break  # fall through to the suffix table
        for sentry in self.suffix_entries:
            if sentry.matches(packet):
                return sentry.port
        raise LookupMiss(f"{self.owner}: no route for {packet}")

    # -- accounting (TCAM sizing, Section 4.3) ----------------------------

    @property
    def size(self) -> int:
        """Total installed entries — what would occupy switch TCAM."""
        return len(self.prefix_entries) + len(self.suffix_entries)

    def __repr__(self) -> str:
        return (
            f"<RoutingTable {self.owner!r}: {len(self.prefix_entries)} prefix + "
            f"{len(self.suffix_entries)} suffix entries>"
        )
