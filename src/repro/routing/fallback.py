"""ShareBackup's last routing resort: degrade to the fat-tree baseline.

ShareBackup's whole point is that routing never changes — failover makes
the logical topology whole again, so flows keep their static ECMP pins
(the "Stop Rerouting!" of the title).  But when the *recovery machinery
itself* fails — backup pool exhausted, circuit switches refusing to
reconfigure (:mod:`repro.chaos`) — a slot can stay dark, and a pinned
flow through it would stall forever.

:class:`FallbackRouter` is the controller's escape hatch for exactly that
case: it behaves as :class:`~repro.routing.static.StaticEcmpRouter` while
ShareBackup is winning, and once the controller reports a degraded slot
(:meth:`activate`) it becomes the
:class:`~repro.routing.reroute_global.GlobalOptimalRerouteRouter` of the
paper's §2.2 fat-tree baseline — the architecture gracefully degrades to
the thing it set out to beat, instead of stranding traffic.
"""

from __future__ import annotations

from ..topology.fattree import FatTree
from .paths import Path
from .reroute_global import GlobalOptimalRerouteRouter
from .router import LoadMap, Router
from .static import StaticEcmpRouter

__all__ = ["FallbackRouter"]


class FallbackRouter(Router):
    """Static ECMP until :meth:`activate`; global optimal rerouting after.

    Activation is one-way and applies to the whole fabric: once any slot
    is beyond backup recovery, every flow hitting a failure reroutes (the
    healthy ones were recovered in place and never repath anyway).
    """

    name = "sharebackup/fallback"

    def __init__(self, tree: FatTree) -> None:
        self.tree = tree
        self._static = StaticEcmpRouter(tree)
        self._reroute = GlobalOptimalRerouteRouter(tree)
        self.degraded = False

    def activate(self) -> None:
        """The controller degraded a slot to rerouting: switch personality."""
        self.degraded = True

    def initial_path(
        self, src_host: str, dst_host: str, flow_label: int
    ) -> Path | None:
        if self.degraded:
            return self._reroute.initial_path(src_host, dst_host, flow_label)
        return self._static.initial_path(src_host, dst_host, flow_label)

    def repath(
        self,
        src_host: str,
        dst_host: str,
        flow_label: int,
        old_path: Path | None,
        link_load: LoadMap,
    ) -> Path | None:
        if self.degraded:
            return self._reroute.repath(
                src_host, dst_host, flow_label, old_path, link_load
            )
        return self._static.repath(
            src_host, dst_host, flow_label, old_path, link_load
        )

    def on_topology_change(self) -> None:
        self._static.on_topology_change()
        self._reroute.on_topology_change()
