"""Routing substrate: two-level fat-tree tables, ECMP, and the rerouting
policies of the architectures compared in the paper's failure study.

The ShareBackup "router" (paths never change because failed hardware is
replaced) lives in :mod:`repro.core` with the rest of the contribution.
"""

from .base import LookupMiss, Packet, PrefixEntry, RoutingTable, SuffixEntry
from .ecmp import EcmpSelector, flow_hash
from .fallback import FallbackRouter
from .paths import DirectedSegment, Path, enumerate_paths, operational_paths
from .reroute_f10 import F10LocalRerouteRouter
from .reroute_global import GlobalOptimalRerouteRouter
from .router import LoadMap, Router
from .static import StaticEcmpRouter
from .twolevel import TwoLevelRouting, down_port, host_port, pod_port, up_port

__all__ = [
    "DirectedSegment",
    "EcmpSelector",
    "F10LocalRerouteRouter",
    "FallbackRouter",
    "GlobalOptimalRerouteRouter",
    "LoadMap",
    "LookupMiss",
    "Packet",
    "Path",
    "PrefixEntry",
    "Router",
    "RoutingTable",
    "StaticEcmpRouter",
    "SuffixEntry",
    "TwoLevelRouting",
    "down_port",
    "enumerate_paths",
    "flow_hash",
    "host_port",
    "operational_paths",
    "pod_port",
    "up_port",
]
