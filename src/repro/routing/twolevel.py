"""Two-Level Routing tables for fat-tree (Al-Fares et al.) with the VLAN
extension ShareBackup's live impersonation relies on (paper Section 4.3).

Ports are **positional**: ``host{h}``/``up{a}`` on edge switches,
``down{e}``/``up{j}`` on aggregation switches, ``pod{p}`` on cores.  This
mirrors how the hardware works and is what makes impersonation sound:
when a backup switch replaces a failed switch, the circuit switches
reconnect the failed switch's cables to the *same-numbered* ports of the
backup, so a routing table expressed over port positions remains valid
verbatim.  It also realises two observations the paper builds on:

* all core switches share one table (``10.p/16 → pod{p}``);
* all aggregation switches of a pod share one table (their identical
  suffix→port map lands on *different* cores because the wiring differs
  per switch, which preserves the load spreading).

Edge switches differ only in their out-bound suffix entries (the rotation
``(host_id + edge_index) mod k/2`` that avoids hash polarisation), so the
combined failure-group table tags exactly those entries with the owning
edge's VLAN id.

VLAN convention (documented in :mod:`repro.core.impersonation`): a host
tags a packet with its edge switch's VLAN id **iff the destination is
outside its own rack subnet**; aggregation switches strip the tag when
forwarding downward.  Untagged packets therefore only ever match the
in-bound (host-port) entries, tagged packets prefer the tagged out-bound
entries, and the combined table needs no extra disambiguation entries —
matching the paper's count of ``k/2 + k²/4`` entries for the edge group
(1056 at ``k = 64``).
"""

from __future__ import annotations

from ..topology.addressing import FatTreeAddressPlan, Prefix, Suffix
from ..topology.fattree import FatTree
from .base import RoutingTable

__all__ = [
    "TwoLevelRouting",
    "host_port",
    "up_port",
    "down_port",
    "pod_port",
]


def host_port(h: int) -> str:
    return f"host{h}"


def up_port(i: int) -> str:
    return f"up{i}"


def down_port(e: int) -> str:
    return f"down{e}"


def pod_port(p: int) -> str:
    return f"pod{p}"


class TwoLevelRouting:
    """Builds the static two-level tables for every switch of a fat-tree."""

    #: VLAN ids start here; 0 is reserved for "untagged" in some hardware.
    VLAN_BASE = 100

    def __init__(self, tree: FatTree) -> None:
        self.tree = tree
        self.plan: FatTreeAddressPlan = tree.plan
        self.k = tree.k
        self.half = tree.half

    # ------------------------------------------------------------------
    # VLAN assignment (Section 4.3: unique id per edge switch in a pod)
    # ------------------------------------------------------------------

    def vlan_of_edge(self, pod: int, edge_index: int) -> int:
        """Globally unique VLAN id of an edge switch.

        Uniqueness is only *required* within a pod (the failure-group
        scope), but global uniqueness costs nothing and eases debugging.
        """
        return self.VLAN_BASE + pod * self.half + edge_index

    # ------------------------------------------------------------------
    # per-switch tables
    # ------------------------------------------------------------------

    def edge_table(
        self, pod: int, edge_index: int, tagged: bool = True
    ) -> RoutingTable:
        """Table of edge switch ``E_{pod,edge_index}``.

        In-bound: one untagged suffix entry per attached host delivering to
        its host port.  Out-bound: ``k/2`` suffix entries spreading flows
        over the aggregation uplinks with the per-edge rotation; they carry
        the edge's VLAN id when ``tagged`` (the ShareBackup-edited form —
        untagged original tables are available for baseline comparisons
        via ``tagged=False``).
        """
        table = RoutingTable(owner=f"E.{pod}.{edge_index}")
        vlan = self.vlan_of_edge(pod, edge_index) if tagged else None
        for h in range(self.tree.hosts_per_edge):
            table.add_suffix(Suffix((self._host_octet(h),)), host_port(h))
        # Out-bound entries must cover every host-id octet that can appear
        # in a destination address: k/2 on a canonical tree, more when the
        # topology is oversubscribed.
        for h in range(max(self.half, self.tree.hosts_per_edge)):
            port = up_port((h + edge_index) % self.half)
            table.add_suffix(Suffix((self._host_octet(h),)), port, vlan=vlan)
        return table

    def agg_table(self, pod: int) -> RoutingTable:
        """The single table shared by every aggregation switch of ``pod``."""
        table = RoutingTable(owner=f"A.{pod}.*")
        for e in range(self.half):
            table.add_prefix(self.plan.subnet_prefix(pod, e), down_port(e))
        table.add_prefix(Prefix(()), None, terminating=False)  # /0 fall-through
        for h in range(max(self.half, self.tree.hosts_per_edge)):
            table.add_suffix(Suffix((self._host_octet(h),)), up_port(h % self.half))
        return table

    def core_table(self) -> RoutingTable:
        """The single table shared by *all* core switches."""
        table = RoutingTable(owner="C.*")
        for p in range(self.k):
            table.add_prefix(self.plan.pod_prefix(p), pod_port(p))
        return table

    # ------------------------------------------------------------------
    # positional-port resolution against the concrete topology
    # ------------------------------------------------------------------

    def resolve_port(self, switch: str, port: str) -> str:
        """Map a positional port of ``switch`` to the neighbour node name.

        This is the software analogue of the cable plugged into that port;
        for ShareBackup the circuit-switch layer performs this resolution
        instead (see :mod:`repro.core.sharebackup`).
        """
        node = self.tree.nodes[switch]
        kind = node.kind.value
        if kind == "edge":
            pod, e = node.pod, node.index
            if port.startswith("host"):
                return f"H.{pod}.{e}.{int(port[4:])}"
            if port.startswith("up"):
                return f"A.{pod}.{int(port[2:])}"
        elif kind == "aggregation":
            pod, i = node.pod, node.index
            if port.startswith("down"):
                return f"E.{pod}.{int(port[4:])}"
            if port.startswith("up"):
                return f"C.{self._core_of(pod, i, int(port[2:]))}"
        elif kind == "core":
            if port.startswith("pod"):
                p = int(port[3:])
                return f"A.{p}.{self.tree.agg_of_core(node.index, p)}"
        raise ValueError(f"cannot resolve port {port!r} on {switch!r}")

    def _core_of(self, pod: int, agg_index: int, port: int) -> int:
        core_of_pod = getattr(self.tree, "core_of_pod", None)
        if core_of_pod is not None:  # F10's pod-type-aware wiring
            return core_of_pod(pod, agg_index, port)
        return self.tree.core_of(agg_index, port)

    # ------------------------------------------------------------------

    @staticmethod
    def _host_octet(host_id: int) -> int:
        """Last address octet of the ``host_id``-th host under an edge."""
        return 2 + host_id
