"""Fat-tree baseline: ECMP with *global optimal rerouting*.

Section 2.2 of the paper: "Under failures, fat-tree uses global optimal
rerouting."  We realise the globally-informed ideal as follows: a flow
whose path is hit by a failure is re-pinned onto one of the *surviving
equal-length* shortest paths, choosing the path whose most-loaded
directed segment carries the fewest flows (ties broken by flow hash so
the choice stays deterministic).  This is the best a rerouting scheme can
do without adding hops: the alternative path set of a fat-tree always
has minimum length, so fat-tree suffers **no path dilation** (Table 3) —
but the surviving paths share fewer links, so congestion and therefore
bandwidth loss are unavoidable, which is exactly the effect Figure 1(c)
quantifies.

Fat-tree pays for this with **upstream repair**: a downward failure
(e.g. a core→agg link) can only be avoided by choices made near the
*source* (a different core), so failure information must propagate
upstream before rerouting is possible.  The recovery *timing* cost of
that propagation is modelled in :mod:`repro.core.recovery`; here we
compute only the steady state after rerouting, matching the paper's
methodology ("we simulate the final states after failures without the
transient dynamics").
"""

from __future__ import annotations

from ..topology.fattree import FatTree
from .ecmp import EcmpSelector, flow_hash
from .paths import Path
from .router import LoadMap, Router

__all__ = ["GlobalOptimalRerouteRouter"]


class GlobalOptimalRerouteRouter(Router):
    """ECMP initial placement + least-loaded surviving-shortest-path repair."""

    name = "fat-tree/global-optimal"

    def __init__(self, tree: FatTree) -> None:
        self.tree = tree
        self.selector = EcmpSelector(tree)

    def initial_path(
        self, src_host: str, dst_host: str, flow_label: int
    ) -> Path | None:
        return self.selector.select(
            src_host, dst_host, flow_label, operational_only=True
        )

    def repath(
        self,
        src_host: str,
        dst_host: str,
        flow_label: int,
        old_path: Path | None,
        link_load: LoadMap,
    ) -> Path | None:
        candidates = self.selector.paths(src_host, dst_host, operational_only=True)
        if not candidates:
            return None
        best: Path | None = None
        best_key: tuple[int, int] | None = None
        for path in candidates:
            segments = path.segments(self.tree, flow_label)
            worst = max((link_load.get(seg, 0) for seg in segments), default=0)
            key = (worst, flow_hash(flow_label, path.nodes) % (1 << 16))
            if best_key is None or key < best_key:
                best, best_key = path, key
        return best

    def on_topology_change(self) -> None:
        self.selector.invalidate()
