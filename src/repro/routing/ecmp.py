"""ECMP path selection.

Both networks in the paper's failure study "use ECMP routing": each flow
is pinned to one of the equal-cost shortest paths by a hash of its
five-tuple.  We model the five-tuple with a per-flow integer label and
use CRC32 for the hash — deterministic across runs (unlike ``hash()``,
which Python salts per process), uniform enough for load spreading, and
cheap.

``EcmpSelector`` chooses among *enumerated* equal-cost paths, which is
equivalent to consistent per-hop hashing on a symmetric Clos and keeps
the flow→path pinning explicit for the simulator.
"""

from __future__ import annotations

import zlib
from collections.abc import Sequence

from ..topology.fattree import FatTree
from .paths import Path, enumerate_edge_paths

__all__ = ["flow_hash", "EcmpSelector"]


def flow_hash(*parts: object) -> int:
    """Deterministic 32-bit hash of heterogeneous flow identifiers."""
    blob = "|".join(str(p) for p in parts).encode()
    return zlib.crc32(blob)


class EcmpSelector:
    """Pins flows to equal-cost paths by five-tuple hash.

    The selector caches path enumerations per (src rack, dst rack) pair —
    path sets in a fat-tree only depend on rack locations, not on the
    individual host — which keeps large trace replays fast.  Caches are
    invalidated wholesale on topology failure changes via
    :meth:`invalidate` (the cache keys include no failure state).
    """

    def __init__(self, tree: FatTree) -> None:
        self.tree = tree
        self._cache: dict[tuple[str, str, bool], list[tuple[str, ...]]] = {}

    def _middles(
        self, src_edge: str, dst_edge: str, operational_only: bool
    ) -> list[tuple[str, ...]]:
        key = (src_edge, dst_edge, operational_only)
        cached = self._cache.get(key)
        if cached is None:
            cached = enumerate_edge_paths(
                self.tree, src_edge, dst_edge, operational_only=operational_only
            )
            self._cache[key] = cached
        return cached

    def paths(
        self, src_host: str, dst_host: str, operational_only: bool = False
    ) -> list[Path]:
        """All equal-cost paths, cached at edge-pair granularity."""
        src_edge = self.tree.edge_of_host(src_host)
        dst_edge = self.tree.edge_of_host(dst_host)
        if operational_only and not self._host_links_ok(
            src_host, src_edge, dst_host, dst_edge
        ):
            return []
        return [
            Path((src_host,) + middle + (dst_host,))
            for middle in self._middles(src_edge, dst_edge, operational_only)
        ]

    def select(
        self,
        src_host: str,
        dst_host: str,
        flow_label: int,
        operational_only: bool = False,
    ) -> Path | None:
        """The ECMP choice for one flow, or ``None`` if no path survives.

        Only the selected path object is materialised — candidate sets
        are shared per edge pair, which is what keeps trace-scale ECMP
        pinning fast.
        """
        src_edge = self.tree.edge_of_host(src_host)
        dst_edge = self.tree.edge_of_host(dst_host)
        if operational_only and not self._host_links_ok(
            src_host, src_edge, dst_host, dst_edge
        ):
            return None
        middles = self._middles(src_edge, dst_edge, operational_only)
        if not middles:
            return None
        index = flow_hash(src_host, dst_host, flow_label) % len(middles)
        return Path((src_host,) + middles[index] + (dst_host,))

    def _host_links_ok(
        self, src_host: str, src_edge: str, dst_host: str, dst_edge: str
    ) -> bool:
        return bool(
            self.tree.operational_links_between(src_host, src_edge)
            and self.tree.operational_links_between(dst_host, dst_edge)
        )

    @staticmethod
    def select_from(candidates: Sequence[Path], flow_label: int) -> Path | None:
        """Hash-pick from an explicit candidate list (used by rerouting)."""
        if not candidates:
            return None
        return candidates[flow_hash("re", flow_label) % len(candidates)]

    def invalidate(self) -> None:
        """Drop cached operational path sets (call after failure changes)."""
        self._cache = {
            key: paths for key, paths in self._cache.items() if not key[2]
        }
