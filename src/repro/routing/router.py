"""The router interface the fluid simulator drives.

A router decides two things for each flow:

* :meth:`initial_path` — the ECMP pin when the flow starts;
* :meth:`repath` — the replacement path after a failure touches the
  current path (or after a repair makes better paths available).

Returning ``None`` marks the flow disconnected; the simulator stalls it
(rate 0) and asks again after the next topology change.  ``link_load``
gives the current number of flows on every directed segment so that
load-aware policies ("global optimal rerouting" in the paper's failure
study) can pick the least-loaded alternative.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Mapping

from .paths import DirectedSegment, Path

__all__ = ["Router", "LoadMap"]

LoadMap = Mapping[DirectedSegment, int]


class Router(ABC):
    """Strategy object: how a network architecture routes and re-routes."""

    #: Human-readable policy name, used in experiment reports.
    name: str = "router"

    @abstractmethod
    def initial_path(
        self, src_host: str, dst_host: str, flow_label: int
    ) -> Path | None:
        """Path assigned at flow arrival (honouring current failures)."""

    @abstractmethod
    def repath(
        self,
        src_host: str,
        dst_host: str,
        flow_label: int,
        old_path: Path | None,
        link_load: LoadMap,
    ) -> Path | None:
        """Replacement path after a topology change; ``None`` = disconnected."""

    def on_topology_change(self) -> None:
        """Hook invoked by the simulator after failures/repairs change the
        operational topology (default: nothing to invalidate)."""
