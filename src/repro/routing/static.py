"""Routers without repair — the degenerate baselines.

``StaticEcmpRouter`` pins flows by ECMP and never changes the pin: a flow
whose path is hit by a failure simply stalls until the element is
repaired.  This models a network with no failure recovery at all, and is
the reference point for the "affected flows/coflows" analysis of
Figures 1(a) and 1(b), where a flow counts as affected exactly when its
(static) path traverses a failed node or link.
"""

from __future__ import annotations

from ..topology.fattree import FatTree
from .ecmp import EcmpSelector
from .paths import Path
from .router import LoadMap, Router

__all__ = ["StaticEcmpRouter"]


class StaticEcmpRouter(Router):
    """ECMP placement, no rerouting: failures stall flows until repair."""

    name = "static-ecmp"

    def __init__(self, tree: FatTree) -> None:
        self.tree = tree
        self.selector = EcmpSelector(tree)

    def initial_path(
        self, src_host: str, dst_host: str, flow_label: int
    ) -> Path | None:
        # Placement ignores failures on purpose: the pin is the pre-failure
        # ECMP choice; the simulator will stall the flow if the path is down.
        return self.selector.select(src_host, dst_host, flow_label)

    def repath(
        self,
        src_host: str,
        dst_host: str,
        flow_label: int,
        old_path: Path | None,
        link_load: LoadMap,
    ) -> Path | None:
        # Re-derive the deterministic pin (selection ignores failures, so
        # this is always the same pre-failure ECMP path) and only hand it
        # back when it is whole again: repair resumes the flow in place.
        pin = self.selector.select(src_host, dst_host, flow_label)
        if pin is not None and pin.is_operational(self.tree):
            return pin
        return None  # stalled until repair restores the pinned path

    def on_topology_change(self) -> None:
        self.selector.invalidate()
