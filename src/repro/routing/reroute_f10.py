"""F10 baseline: local rerouting with bounded detours (Liu et al., NSDI'13).

F10 recovers from failures *locally*: the switch adjacent to the failure
redirects traffic immediately, without waiting for failure information to
propagate upstream.  When the redirect target is a same-level sibling the
path length is unchanged; when no equal-length escape exists the switch
"bounces" the packet one level the wrong way and back — the paper's
"local three-hop rerouting" — which dilates the path by two hops and
concentrates load on the detour links.  Section 2.2 of the ShareBackup
paper finds that this dilation makes F10's post-failure CCT *worse* than
fat-tree's globally rerouted CCT; reproducing that ordering is the point
of this module.

Detour construction, by failure position on the original path
``H → E → A → C → A' → E' → H'``:

* **up-hop failure (E–A or A dead)** — the edge switch picks another live
  aggregation parent and a live core under it: equal length, no dilation.
* **A–C link or C dead** — detected at ``A``; bounce down to a sibling
  edge, up through a different aggregation to a different core:
  ``A → E″ → A″ → C″`` replaces ``A → C`` (+2 hops).
* **C–A′ link or A′ dead** — detected at ``C``; bounce into a *third* pod
  and back through a different core: ``C → A‴ → C″ → A*`` replaces
  ``C → A′`` (+2 hops).  This is where F10's AB wiring earns its keep:
  the third pod's aggregation switch reaches cores the failed one did
  not.
* **A′–E′ link** — detected at ``A′``; bounce via a sibling edge of the
  destination pod: ``A′ → E″ → A″ → E′`` (+2 hops).
* **E′ dead or a host link dead** — hosts are single-homed; no rerouting
  scheme can help: the flow is disconnected.

Candidates at each choice point are filtered for operationality and the
final path is verified end-to-end; if the local detour cannot be built
(cascaded failures), the router falls back to any surviving shortest
path, and only then reports disconnection.
"""

from __future__ import annotations

from ..topology.base import NodeKind
from ..topology.fattree import FatTree
from .ecmp import EcmpSelector, flow_hash
from .paths import Path
from .router import LoadMap, Router

__all__ = ["F10LocalRerouteRouter"]


class F10LocalRerouteRouter(Router):
    """ECMP initial placement + F10-style local (possibly 3-hop) repair."""

    name = "f10/local-rerouting"

    def __init__(self, tree: FatTree) -> None:
        self.tree = tree
        self.selector = EcmpSelector(tree)

    # ------------------------------------------------------------------

    def initial_path(
        self, src_host: str, dst_host: str, flow_label: int
    ) -> Path | None:
        """Failure-*oblivious* ECMP pin, locally detoured if already broken.

        F10's defining property is that upstream switches do not learn
        about failures: a new flow hashes onto its path as if the network
        were healthy, and the switch adjacent to a failure bounces the
        packets locally.  Modelling the pin as failure-aware would
        silently grant F10 the global convergence it explicitly avoids
        (and would erase the path dilation the paper measures).
        """
        pin = self.selector.select(src_host, dst_host, flow_label)
        if pin is None:
            return None
        if pin.is_operational(self.tree):
            return pin
        detour = self._local_detour(pin, flow_label)
        if detour is not None:
            return detour
        # Local repair impossible — fall back to any surviving shortest
        # path (F10 ultimately converges through its pushback protocol).
        return self.selector.select(
            src_host, dst_host, flow_label, operational_only=True
        )

    def repath(
        self,
        src_host: str,
        dst_host: str,
        flow_label: int,
        old_path: Path | None,
        link_load: LoadMap,
    ) -> Path | None:
        if old_path is None:
            # Stalled flow retrying after a topology change.
            return self.initial_path(src_host, dst_host, flow_label)
        if old_path.is_operational(self.tree):
            return old_path

        detour = self._local_detour(old_path, flow_label)
        if detour is not None:
            return detour
        return self.selector.select(
            src_host, dst_host, flow_label, operational_only=True
        )

    def on_topology_change(self) -> None:
        self.selector.invalidate()

    # ------------------------------------------------------------------
    # detour construction
    # ------------------------------------------------------------------

    def _local_detour(self, old: Path, label: int) -> Path | None:
        nodes = old.nodes
        broken = self._first_broken_hop(nodes)
        if broken is None:
            return None
        tree = self.tree

        if len(nodes) == 3:  # H - E - H': nothing local to try
            return None

        src_host, src_edge = nodes[0], nodes[1]
        dst_host, dst_edge = nodes[-1], nodes[-2]
        # Unrecoverable endpoints.
        if not tree.nodes[src_edge].up or not tree.nodes[dst_edge].up:
            return None
        if not self._hop_ok(src_host, src_edge):
            return None
        if not self._hop_ok(dst_edge, dst_host):
            return None

        if len(nodes) == 5:  # intra-pod: H E A E' H'
            return self._detour_intra_pod(nodes, broken, label)
        return self._detour_inter_pod(nodes, broken, label)

    def _detour_intra_pod(self, nodes, broken: int, label: int) -> Path | None:
        src_host, src_edge, agg, dst_edge, dst_host = nodes
        tree = self.tree
        if broken == 1 or not tree.nodes[agg].up:
            # E–A failed: any other live parent reaching both edges works
            # (equal length; this is F10's free sibling failover).
            for alt in self._pick(self._live_aggs(src_edge, dst_edge), label, "ia"):
                return Path((src_host, src_edge, alt, dst_edge, dst_host))
            return None
        # A–E' failed: bounce via a sibling edge (+2 hops).
        siblings = self._sibling_edges(agg, {src_edge, dst_edge})
        for mid_edge in self._pick(siblings, label, "ib"):
            alts = self._live_aggs(mid_edge, dst_edge, exclude={agg})
            for alt in self._pick(alts, label, "ic"):
                path = Path(
                    (src_host, src_edge, agg, mid_edge, alt, dst_edge, dst_host)
                )
                if path.is_operational(tree):
                    return path
        return None

    def _detour_inter_pod(self, nodes, broken: int, label: int) -> Path | None:
        src_host, src_edge, agg, core, dst_agg, dst_edge, dst_host = nodes
        tree = self.tree
        dst_pod = tree.nodes[dst_edge].pod

        agg_dead = not tree.nodes[agg].up
        core_dead = not tree.nodes[core].up
        dst_agg_dead = not tree.nodes[dst_agg].up

        if broken == 1 or agg_dead:
            # E–A failed: edge-level sibling failover, equal length.
            alt_aggs = self._live_aggs_of_edge(src_edge, exclude={agg})
            for alt_agg in self._pick(alt_aggs, label, "e1"):
                cores = self._cores_reaching(alt_agg, dst_pod)
                for alt_core in self._pick(cores, label, "e2"):
                    path = self._descend(
                        (src_host, src_edge, alt_agg, alt_core),
                        dst_pod, dst_edge, dst_host,
                    )
                    if path is not None:
                        return path
            return None

        if broken == 2 or core_dead:
            # A–C failed, detected at A: bounce down-up inside the source
            # pod (A → E″ → A″ → C″), +2 hops.
            mid_edges = self._sibling_edges(agg, {src_edge})
            for mid_edge in self._pick(mid_edges, label, "a1"):
                alt_aggs = self._live_aggs_of_edge(mid_edge, exclude={agg})
                for alt_agg in self._pick(alt_aggs, label, "a2"):
                    cores = self._cores_reaching(alt_agg, dst_pod)
                    for alt_core in self._pick(cores, label, "a3"):
                        path = self._descend(
                            (src_host, src_edge, agg, mid_edge, alt_agg, alt_core),
                            dst_pod,
                            dst_edge,
                            dst_host,
                        )
                        if path is not None:
                            return path
            return None

        if broken == 3 or dst_agg_dead:
            # C–A′ failed, detected at C: bounce through a third pod
            # (C → A‴ → C″), +2 hops.
            src_pod = tree.nodes[src_edge].pod
            third_aggs = self._live_down_aggs(
                core, exclude_pods={src_pod, dst_pod}
            )
            for third_agg in self._pick(third_aggs, label, "c1"):
                cores = self._cores_reaching(third_agg, dst_pod, exclude={core})
                for alt_core in self._pick(cores, label, "c2"):
                    path = self._descend(
                        (src_host, src_edge, agg, core, third_agg, alt_core),
                        dst_pod,
                        dst_edge,
                        dst_host,
                    )
                    if path is not None:
                        return path
            return None

        # A′–E′ failed, detected at A′: bounce via a sibling edge of the
        # destination pod (A′ → E″ → A″ → E′), +2 hops.
        siblings = self._sibling_edges(dst_agg, {dst_edge})
        for mid_edge in self._pick(siblings, label, "d1"):
            alt_aggs = self._live_aggs(mid_edge, dst_edge, exclude={dst_agg})
            for alt_agg in self._pick(alt_aggs, label, "d2"):
                path = Path(
                    (src_host, src_edge, agg, core, dst_agg, mid_edge,
                     alt_agg, dst_edge, dst_host)
                )
                if path.is_operational(tree):
                    return path
        return None

    # ------------------------------------------------------------------
    # candidate generators (all operational-filtered, deterministic order)
    # ------------------------------------------------------------------

    def _descend(
        self, prefix: tuple[str, ...], dst_pod: int, dst_edge: str, dst_host: str
    ) -> Path | None:
        """Complete ``prefix`` (ending at a core) down into the destination."""
        core = prefix[-1]
        for down_agg in self._live_down_aggs(core, include_pods={dst_pod}):
            path = Path(prefix + (down_agg, dst_edge, dst_host))
            if path.is_operational(self.tree):
                return path
        return None

    def _hop_ok(self, a: str, b: str) -> bool:
        return bool(self.tree.operational_links_between(a, b))

    def _live_aggs(
        self, edge_a: str, edge_b: str, exclude: set[str] = frozenset()
    ) -> list[str]:
        """Aggregation switches with operational links to both edges."""
        tree = self.tree
        out = []
        for other, _ in tree.up_neighbors(edge_a):
            node = tree.nodes[other]
            if node.kind is not NodeKind.AGGREGATION or node.is_backup:
                continue
            if other in exclude:
                continue
            if self._hop_ok(other, edge_b):
                out.append(other)
        return sorted(set(out))

    def _live_aggs_of_edge(
        self, edge: str, exclude: set[str] = frozenset()
    ) -> list[str]:
        tree = self.tree
        return sorted(
            {
                other
                for other, _ in tree.up_neighbors(edge)
                if tree.nodes[other].kind is NodeKind.AGGREGATION
                and not tree.nodes[other].is_backup
                and other not in exclude
            }
        )

    def _sibling_edges(self, agg: str, exclude: set[str]) -> list[str]:
        tree = self.tree
        return sorted(
            {
                other
                for other, _ in tree.up_neighbors(agg)
                if tree.nodes[other].kind is NodeKind.EDGE
                and not tree.nodes[other].is_backup
                and other not in exclude
            }
        )

    def _cores_reaching(
        self, agg: str, dst_pod: int, exclude: set[str] = frozenset()
    ) -> list[str]:
        """Cores live-adjacent to ``agg`` that still have a live door into
        ``dst_pod``."""
        tree = self.tree
        out = []
        for core, _ in tree.up_neighbors(agg):
            node = tree.nodes[core]
            if node.kind is not NodeKind.CORE or node.is_backup or core in exclude:
                continue
            if self._live_down_aggs(core, include_pods={dst_pod}):
                out.append(core)
        return sorted(set(out))

    def _live_down_aggs(
        self,
        core: str,
        include_pods: set[int] | None = None,
        exclude_pods: set[int] = frozenset(),
    ) -> list[str]:
        tree = self.tree
        out = []
        for other, _ in tree.up_neighbors(core):
            node = tree.nodes[other]
            if node.kind is not NodeKind.AGGREGATION or node.is_backup:
                continue
            if include_pods is not None and node.pod not in include_pods:
                continue
            if node.pod in exclude_pods:
                continue
            out.append(other)
        return sorted(set(out))

    def _pick(self, candidates: list[str], label: int, salt: str) -> list[str]:
        """Deterministically rotate candidates by flow hash, so different
        flows spread over different detours (as F10's hashing would)."""
        if not candidates:
            return []
        start = flow_hash(label, salt) % len(candidates)
        return candidates[start:] + candidates[:start]

    # ------------------------------------------------------------------

    def _first_broken_hop(self, nodes: tuple[str, ...]) -> int | None:
        """Index ``i`` of the first non-operational hop ``nodes[i]→nodes[i+1]``."""
        tree = self.tree
        for i, (a, b) in enumerate(zip(nodes, nodes[1:])):
            if not tree.nodes[a].up or not tree.nodes[b].up:
                return i
            if not self._hop_ok(a, b):
                return i
        return None
