"""Up/down path enumeration for folded-Clos topologies.

Fat-tree, F10's AB fat-tree, and the Aspen variant are all folded Clos
networks: every host-to-host route climbs to the lowest common level and
descends, so the complete set of shortest paths can be enumerated
structurally instead of by graph search:

* same edge switch:          ``H → E → H'``                      (2 hops)
* same pod, different edge:  ``H → E → A → E' → H'``             (4 hops)
* different pods:            ``H → E → A → C → A' → E' → H'``    (6 hops)

Enumeration walks the *adjacency* of the concrete topology rather than
closed-form index arithmetic, so it automatically honours F10's skewed
wiring and Aspen's reduced parent sets, and it can be restricted to
operational elements for post-failure path sets.

Paths also carry their *directed segment* view — the per-direction link
capacities the fluid simulator allocates bandwidth over.  Directions
matter: a full-duplex link congested host-bound may be idle core-bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

from ..topology.base import NodeKind, Topology
from ..topology.fattree import FatTree

__all__ = [
    "Path",
    "DirectedSegment",
    "enumerate_paths",
    "enumerate_edge_paths",
    "operational_paths",
]


@dataclass(frozen=True, eq=False)
class DirectedSegment:
    """One direction of one physical link: the unit of capacity allocation.

    Hash and equality are hand-rolled over the packed integer key: the
    max-min allocator hashes segments tens of millions of times per
    trace replay, and the dataclass-generated tuple hash dominated the
    profile before this.
    """

    link_id: int
    #: True when traversing from ``link.a`` to ``link.b``.
    forward: bool

    def __hash__(self) -> int:
        return (self.link_id << 1) | self.forward

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DirectedSegment)
            and self.link_id == other.link_id
            and self.forward == other.forward
        )

    def __repr__(self) -> str:
        arrow = "->" if self.forward else "<-"
        return f"<seg {self.link_id}{arrow}>"


@dataclass(frozen=True)
class Path:
    """An ordered node sequence from source host to destination host."""

    nodes: tuple[str, ...]

    @property
    def hops(self) -> int:
        """Number of links traversed."""
        return len(self.nodes) - 1

    @property
    def src(self) -> str:
        return self.nodes[0]

    @property
    def dst(self) -> str:
        return self.nodes[-1]

    def segments(
        self, topo: Topology, flow_label: int = 0
    ) -> tuple[DirectedSegment, ...]:
        """Resolve into directed link segments against ``topo``.

        Parallel links (Aspen-style duplicated wiring) are load-balanced:
        the operational candidates of a hop are indexed by a hash of
        ``flow_label``, so distinct flows spread across the parallel pair
        and the pair's capacity actually aggregates.  With a single
        candidate (every plain fat-tree hop) the choice is the identity.
        If no candidate is operational the lowest-id link is returned so
        callers can still inspect a dead path's geometry.
        """
        segs: list[DirectedSegment] = []
        for hop, (a, b) in enumerate(zip(self.nodes, self.nodes[1:])):
            candidates = sorted(topo.links_between(a, b), key=lambda l: l.link_id)
            if not candidates:
                raise ValueError(f"path hop {a}->{b} has no link")
            operational = [
                l for l in candidates if topo.link_is_operational(l.link_id)
            ]
            if not operational:
                link = candidates[0]
            elif len(operational) == 1:
                link = operational[0]
            else:
                from .ecmp import flow_hash

                link = operational[flow_hash(flow_label, hop) % len(operational)]
            segs.append(DirectedSegment(link.link_id, forward=(link.a == a)))
        return tuple(segs)

    def uses_node(self, name: str) -> bool:
        return name in self.nodes

    def uses_link(self, topo: Topology, link_id: int) -> bool:
        link = topo.links[link_id]
        for a, b in zip(self.nodes, self.nodes[1:]):
            if {a, b} == {link.a, link.b}:
                # Only true if this hop would actually pick that link
                # (relevant with parallel links).
                chosen = self.segments(topo)
                return any(s.link_id == link_id for s in chosen)
        return False

    def is_operational(self, topo: Topology) -> bool:
        return topo.path_is_operational(self.nodes)

    def __repr__(self) -> str:
        return "Path(" + " > ".join(self.nodes) + ")"


class _TopoMemo:
    """Per-topology memo for the neighbour/hop queries path enumeration
    hammers.

    Large replays call :func:`enumerate_edge_paths` once per flow
    arrival (the per-edge-pair ECMP cache stops hitting once there are
    hundreds of edge switches), and each enumeration re-derives the
    same operational neighbour sets hundreds of times — at k=32 that
    was ~390k :func:`_up_switches` evaluations walking 12.7M adjacency
    entries for ~1.3k distinct keys.  Memoising per query key collapses
    that, and because the memo only caches (it never reorders), the
    enumerated path lists — and therefore every replay decision
    downstream — are byte-for-byte what the uncached walk produces.

    Invalidation is by :attr:`~repro.topology.base.Topology.state_rev`
    comparison: any construction or failure-state mutation bumps the
    revision and the next query starts a fresh memo.  Entries are held
    via a ``WeakKeyDictionary`` so caching never extends a topology's
    lifetime.
    """

    __slots__ = ("rev", "up", "all", "hop")

    def __init__(self, rev: int) -> None:
        self.rev = rev
        self.up: dict[tuple[str, NodeKind], list[str]] = {}
        self.all: dict[tuple[str, NodeKind], list[str]] = {}
        self.hop: dict[tuple[str, str], bool] = {}


_MEMOS: WeakKeyDictionary[Topology, _TopoMemo] = WeakKeyDictionary()


def _memo_for(topo: Topology) -> _TopoMemo:
    rev = topo.state_rev
    memo = _MEMOS.get(topo)
    if memo is None or memo.rev != rev:
        memo = _TopoMemo(rev)
        _MEMOS[topo] = memo
    return memo


def _up_switches(topo: Topology, name: str, kind: NodeKind) -> list[str]:
    """Operational neighbours of ``name`` having ``kind``, sorted."""
    memo = _memo_for(topo).up
    key = (name, kind)
    hit = memo.get(key)
    if hit is None:
        hit = sorted(
            {
                other
                for other, _link in topo.up_neighbors(name)
                if topo.nodes[other].kind is kind
                and not topo.nodes[other].is_backup
            }
        )
        memo[key] = hit
    return hit


def _all_switch_neighbors(topo: Topology, name: str, kind: NodeKind) -> list[str]:
    memo = _memo_for(topo).all
    key = (name, kind)
    hit = memo.get(key)
    if hit is None:
        hit = sorted(
            {
                other
                for other in topo.neighbors(name)
                if topo.nodes[other].kind is kind
                and not topo.nodes[other].is_backup
            }
        )
        memo[key] = hit
    return hit


def enumerate_edge_paths(
    tree: FatTree,
    src_edge: str,
    dst_edge: str,
    operational_only: bool = False,
) -> list[tuple[str, ...]]:
    """All shortest switch-level sequences from ``src_edge`` to ``dst_edge``.

    These are the host-independent middles of host-to-host paths; ECMP
    caches them per edge pair because every host pair behind the same two
    edges shares the same candidate set.
    """
    if src_edge == dst_edge:
        return [(src_edge,)]
    neigh = _up_switches if operational_only else _all_switch_neighbors
    src_pod = tree.nodes[src_edge].pod
    dst_pod = tree.nodes[dst_edge].pod
    middles: list[tuple[str, ...]] = []

    if src_pod == dst_pod:
        for agg in neigh(tree, src_edge, NodeKind.AGGREGATION):
            if operational_only and not _hop_ok(tree, agg, dst_edge):
                continue
            if dst_edge in tree.neighbors(agg):
                middles.append((src_edge, agg, dst_edge))
        return middles

    for agg in neigh(tree, src_edge, NodeKind.AGGREGATION):
        for core in neigh(tree, agg, NodeKind.CORE):
            for dst_agg in neigh(tree, core, NodeKind.AGGREGATION):
                if tree.nodes[dst_agg].pod != dst_pod:
                    continue
                if dst_edge not in tree.neighbors(dst_agg):
                    continue
                if operational_only and not _hop_ok(tree, dst_agg, dst_edge):
                    continue
                middles.append((src_edge, agg, core, dst_agg, dst_edge))
    return middles


def enumerate_paths(
    tree: FatTree,
    src_host: str,
    dst_host: str,
    operational_only: bool = False,
) -> list[Path]:
    """All shortest up/down paths between two hosts.

    With ``operational_only`` the enumeration skips failed nodes/links,
    yielding the surviving equal-length path set (what ideal rerouting
    chooses from).  Longer detour paths are *not* produced here — those
    are the business of :mod:`repro.routing.reroute_f10`.
    """
    if src_host == dst_host:
        raise ValueError("source and destination host are identical")
    src_edge = tree.edge_of_host(src_host)
    dst_edge = tree.edge_of_host(dst_host)
    if operational_only and not _hop_ok(tree, src_host, src_edge):
        return []
    if operational_only and not _hop_ok(tree, dst_host, dst_edge):
        return []
    middles = enumerate_edge_paths(tree, src_edge, dst_edge, operational_only)
    return [Path((src_host,) + middle + (dst_host,)) for middle in middles]


def _hop_ok(topo: Topology, a: str, b: str) -> bool:
    memo = _memo_for(topo).hop
    key = (a, b)
    hit = memo.get(key)
    if hit is None:
        hit = bool(topo.operational_links_between(a, b))
        memo[key] = hit
    return hit


def operational_paths(tree: FatTree, src_host: str, dst_host: str) -> list[Path]:
    """Shortest operational paths; convenience wrapper."""
    return enumerate_paths(tree, src_host, dst_host, operational_only=True)
