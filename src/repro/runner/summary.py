"""The :class:`RunSummary` a sweep hands back next to its results.

One frozen dataclass holding the orchestration-level outcome — task and
shard counts, cache hit/miss split, retries, serial fallbacks, failures,
and wall-clock — plus a terminal rendering the CLI prints.  The summary
is also embedded verbatim in the journal's ``run_finish`` record so the
JSONL file is self-contained.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["RunSummary"]


@dataclass(frozen=True)
class RunSummary:
    """What one :meth:`repro.runner.SweepRunner.run` call did."""

    tasks: int
    cache_hits: int
    cache_misses: int
    shards: int
    retries: int
    serial_fallbacks: int
    failed_shards: int
    jobs: int
    wall_clock: float

    @property
    def executed(self) -> int:
        """Tasks that actually ran a simulation (cache misses)."""
        return self.cache_misses

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.tasks if self.tasks else 0.0

    def to_dict(self) -> dict:
        return asdict(self)

    def table(self) -> str:
        lines = [
            f"sweep: {self.tasks} tasks in {self.shards} shards "
            f"({self.jobs} jobs), {self.wall_clock:.2f}s",
            f"  cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.hit_rate:.0%} hit rate)",
        ]
        if self.retries or self.serial_fallbacks or self.failed_shards:
            lines.append(
                f"  faults: {self.retries} retries, "
                f"{self.serial_fallbacks} serial fallbacks, "
                f"{self.failed_shards} failed shards"
            )
        return "\n".join(lines)
