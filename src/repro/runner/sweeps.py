"""High-level sweep entry points: one call per paper experiment.

Each function plans a study (:mod:`repro.experiments`), hands the flat
task list to a :class:`~repro.runner.executor.SweepRunner`, and folds
the results back through the study's own aggregator — so the output
objects are *exactly* the ones the serial ``run()`` methods return,
bit-identical for a fixed seed, plus the orchestration
:class:`~repro.runner.summary.RunSummary`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import asdict, dataclass, field

from ..experiments.affected import (
    DEFAULT_RATES,
    AffectedSweepResult,
    AffectedSweepStudy,
)
from ..experiments.availability import AvailabilityResult
from ..experiments.config import StudyConfig
from ..experiments.slowdown import SlowdownDigest, SlowdownStudy
from ..failures.models import FailureModel
from .executor import SweepRunner
from .shards import Task
from .summary import RunSummary

__all__ = [
    "SweepOutcome",
    "AvailabilityPoint",
    "run_affected_sweep",
    "run_slowdown_study",
    "run_availability_sweep",
]


@dataclass(frozen=True)
class SweepOutcome:
    """A study's aggregated values plus the runner's orchestration summary."""

    values: object
    summary: RunSummary


def run_affected_sweep(
    config: StudyConfig,
    kind: str,
    rates: Sequence[float] = DEFAULT_RATES,
    runner: SweepRunner | None = None,
) -> SweepOutcome:
    """Figure 1(a)/(b) through the runner.

    ``values`` is the ``{architecture: AffectedSweepResult}`` dict of
    :meth:`AffectedSweepStudy.run` — bit-identical to the serial path.
    """
    study = AffectedSweepStudy(config, rates=tuple(rates))
    plan = study.plan(kind)
    tasks = [Task(p.task_id, "affected", p.payload(config)) for p in plan]
    runner = runner if runner is not None else SweepRunner()
    run = runner.run(tasks)
    values: dict[str, AffectedSweepResult] = study.aggregate(kind, run.results)
    return SweepOutcome(values=values, summary=run.summary)


def run_slowdown_study(
    config: StudyConfig,
    victims: tuple[str, ...] = SlowdownStudy.DEFAULT_VICTIMS,
    runner: SweepRunner | None = None,
) -> SweepOutcome:
    """Figure 1(c) through the runner: one task per failure replay."""
    study = SlowdownStudy(config, victims=victims)
    plan = study.plan()
    tasks = [Task(p.task_id, "slowdown", p.payload(config)) for p in plan]
    runner = runner if runner is not None else SweepRunner()
    run = runner.run(tasks)
    values: dict[str, SlowdownDigest] = study.aggregate(plan, run.results)
    return SweepOutcome(values=values, summary=run.summary)


@dataclass(frozen=True)
class AvailabilityPoint:
    """One Monte Carlo configuration of the §5.1 time-domain study."""

    group_size: int
    spares: int
    years: float = 50.0
    seed: int = 0
    model: FailureModel | None = None
    label: str = field(default="")

    def task(self, index: int) -> Task:
        payload = {
            "group_size": self.group_size,
            "spares": self.spares,
            "years": self.years,
            "seed": self.seed,
        }
        if self.model is not None:
            payload["model"] = asdict(self.model)
        name = self.label or (
            f"g{self.group_size}-n{self.spares}-y{self.years}-s{self.seed}"
        )
        return Task(f"availability/{index}/{name}", "availability", payload)


def run_availability_sweep(
    points: Sequence[AvailabilityPoint],
    runner: SweepRunner | None = None,
) -> SweepOutcome:
    """§5.1 Monte Carlo replicas through the runner, one task per point.

    ``values`` is a list of :class:`AvailabilityResult`, in ``points``
    order.
    """
    tasks = [point.task(index) for index, point in enumerate(points)]
    runner = runner if runner is not None else SweepRunner()
    run = runner.run(tasks)
    values = [
        AvailabilityResult(**run.results[task.task_id]) for task in tasks
    ]
    return SweepOutcome(values=values, summary=run.summary)
