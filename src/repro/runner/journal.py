"""The run journal: an append-only JSONL record of one sweep execution.

Every orchestration event — run start/finish, per-shard start, finish,
retry, serial fallback, failure, and per-task cache hits/misses — is one
JSON object on one line, so a run can be audited (or tailed live) with
nothing fancier than ``jq``.  Schema (see ``docs/runner.md`` for the
full field tables):

* every record has ``ts`` (epoch seconds, float) and ``event`` (one of
  :data:`EVENTS`);
* shard-scoped records add ``shard_id``/``attempt``; task-scoped records
  add ``task_id``/``key``; ``run_finish`` embeds the
  :class:`~repro.runner.summary.RunSummary` fields.

The journal also keeps in-memory per-event counters — the summary is
assembled from those, so a journal *file* is optional (pass
``path=None`` for counters-only operation).
"""

from __future__ import annotations

import contextlib
import json
import time
from collections import Counter
from collections.abc import Callable
from pathlib import Path
from typing import IO

__all__ = ["EVENTS", "RunJournal"]

#: The journal's event vocabulary, in roughly lifecycle order.
EVENTS = (
    "run_start",
    "cache_hit",
    "cache_miss",
    "shard_start",
    "shard_finish",
    "shard_retry",
    "shard_serial_fallback",
    "shard_failed",
    "cache_store",
    "run_finish",
)


class RunJournal:
    """Appends structured events to a JSONL file and counts them."""

    def __init__(
        self,
        path: str | Path | None = None,
        clock: Callable[[], float] = time.time,
        keep_events: bool = True,
        extra_events: tuple[str, ...] = (),
    ) -> None:
        """``extra_events`` extends the vocabulary for journals layered on
        top of the runner's (e.g. the chaos campaign journal, which adds
        campaign-scoped events while reusing this format and validation)."""
        self.path = Path(path) if path is not None else None
        self.counters: Counter[str] = Counter()
        self.events: list[dict] = []
        self._keep_events = keep_events
        self._clock = clock
        self._known_events = frozenset(EVENTS) | frozenset(extra_events)
        self._fh: IO[str] | None = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = self.path.open("a", encoding="utf-8")

    def record(self, event: str, **fields: object) -> dict:
        """Append one event; returns the record written."""
        if event not in self._known_events:
            raise ValueError(f"unknown journal event {event!r}")
        record = {"ts": self._clock(), "event": event, **fields}
        self.counters[event] += 1
        if self._keep_events:
            self.events.append(record)
        if self._fh is not None:
            self._fh.write(json.dumps(record, sort_keys=True) + "\n")
            self._fh.flush()
        return record

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        with contextlib.suppress(Exception):
            self.close()
