"""Content-addressed result cache for sweep tasks.

A task's cache key is the SHA-256 of its canonical JSON description:
worker kind, full payload (topology parameters, failure scenario,
workload seed — everything the worker reads), and a code-version tag.
Two consequences:

* re-running any benchmark after an *unrelated* change is near-instant —
  every task keys to the same entry and the runner never touches a
  simulator;
* any change that *does* alter a task's inputs changes its key, so stale
  results cannot be served by construction.  Changes to the simulation
  *code* itself are not visible in payloads; two version tokens cover
  them: :data:`CACHE_VERSION` (bump whenever the semantics of any worker
  change) and ``repro.simulation.ENGINE_REV`` (bumped alongside any
  fluid-engine/allocator change that can alter the trace → results map),
  both folded into every key.

Entries are one JSON file each under ``.repro-cache/<kind>/<kk>/<key>.json``
(two-level fan-out keeps directories small), written atomically via a
temp file + rename so concurrent runs can share a cache directory.
Corrupt or truncated entries read as misses and are deleted.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import tempfile
from pathlib import Path

__all__ = ["CACHE_VERSION", "MISS", "cache_key", "ResultCache", "NullCache"]

#: Bump when the meaning of any worker's (payload → result) map changes.
CACHE_VERSION = 1

#: Sentinel distinguishing "no entry" from a legitimately-None result.
MISS = object()


def _engine_rev() -> int:
    """The engine's code-version token, looked up late so tests can
    monkeypatch ``repro.simulation.ENGINE_REV`` and see keys change."""
    from .. import simulation

    return int(simulation.ENGINE_REV)


def cache_key(
    kind: str,
    payload: dict,
    version: int = CACHE_VERSION,
    engine_rev: int | None = None,
) -> str:
    """The content address of one task."""
    canonical = json.dumps(
        {
            "engine_rev": _engine_rev() if engine_rev is None else engine_rev,
            "kind": kind,
            "payload": payload,
            "version": version,
        },
        sort_keys=True,
        separators=(",", ":"),
        default=str,
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Filesystem-backed task-result store."""

    def __init__(self, root: str | Path = ".repro-cache") -> None:
        self.root = Path(root)

    # ------------------------------------------------------------------

    def _path(self, kind: str, key: str) -> Path:
        safe_kind = kind.replace(":", "_").replace("/", "_").replace(".", "_")
        return self.root / safe_kind / key[:2] / f"{key}.json"

    def get(self, kind: str, key: str) -> object:
        """The cached result for ``key``, or :data:`MISS`."""
        path = self._path(kind, key)
        try:
            with path.open("r", encoding="utf-8") as fh:
                entry = json.load(fh)
            return entry["result"]
        except FileNotFoundError:
            return MISS
        except (json.JSONDecodeError, KeyError, OSError):
            # Truncated write from a killed run; purge and recompute.
            with contextlib.suppress(OSError):
                path.unlink()
            return MISS

    def put(self, kind: str, key: str, payload: dict, result: object) -> None:
        """Store ``result`` atomically (concurrent writers both win)."""
        path = self._path(kind, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "kind": kind, "payload": payload, "result": result}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp)
            raise

    # ------------------------------------------------------------------

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(
            1 for p in self.root.rglob("*.json") if not p.name.startswith(".tmp-")
        )

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        if not self.root.exists():
            return removed
        for path in self.root.rglob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


class NullCache:
    """Cache interface that never hits and never stores (``--no-cache``)."""

    root = None

    def get(self, kind: str, key: str) -> object:
        return MISS

    def put(self, kind: str, key: str, payload: dict, result: object) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def clear(self) -> int:
        return 0
