"""Worker dispatch: mapping a task ``kind`` to the function that runs it.

A kind is either one of the built-in aliases below or an explicit
``"module:function"`` path.  Resolution happens *by name inside the
worker process* (`importlib`), not by pickling callables — so shards
survive any multiprocessing start method and the registry never has to
be shipped across the process boundary.

A worker function takes the task payload (a JSON-safe dict) and returns
a JSON-safe result.  Workers must be pure given their payload: the
payload is the cache key, so anything else a worker reads would poison
the cache.  Process-local memoisation (e.g. of a topology + trace built
from config fields in the payload) is encouraged — shards are
contiguous slices of a study plan precisely so those memos hit.

``execute_shard`` is the subprocess entry point: it runs every task of a
shard in order and returns ``{task_id: result}``.  The shard's derived
seed is available to workers through :func:`shard_seed`; note that a
result depending on it must not be cached (the seed is not part of the
payload, hence not part of the cache key) — the shipped studies instead
put explicit per-task seeds *in* the payload, which is both cacheable
and reproducible.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable

__all__ = [
    "WORKERS",
    "resolve_worker",
    "execute_task",
    "execute_shard",
    "shard_seed",
]

_CURRENT_SHARD_SEED: int | None = None


def shard_seed() -> int | None:
    """The derived seed of the shard currently executing (else ``None``)."""
    return _CURRENT_SHARD_SEED


#: Built-in worker aliases (values are ``module:function`` paths).
WORKERS: dict[str, str] = {
    "affected": "repro.experiments.affected:evaluate_affected_payload",
    "slowdown": "repro.experiments.slowdown:evaluate_slowdown_payload",
    "availability": "repro.experiments.availability:evaluate_availability_payload",
    "chaos": "repro.chaos.campaign:evaluate_chaos_payload",
    # Fault-injection workers for exercising the executor itself.
    "testing-flaky": "repro.runner.testing:flaky_payload",
    "testing-subprocess-crash": "repro.runner.testing:subprocess_crash_payload",
    "testing-sleep": "repro.runner.testing:sleep_payload",
}


def resolve_worker(kind: str) -> Callable[[dict], object]:
    """The callable behind ``kind`` (alias or ``module:function`` path)."""
    path = WORKERS.get(kind, kind)
    module_name, sep, attr = path.partition(":")
    if not sep or not module_name or not attr:
        raise ValueError(
            f"unknown worker kind {kind!r} (not an alias, not module:function)"
        )
    module = importlib.import_module(module_name)
    try:
        return getattr(module, attr)
    except AttributeError as exc:
        raise ValueError(f"worker {path!r} does not exist") from exc


def execute_task(kind: str, payload: dict) -> object:
    """Run one task in the current process."""
    return resolve_worker(kind)(payload)


def execute_shard(shard: dict) -> dict[str, object]:
    """Subprocess entry point: run a shard dict, return results by task id."""
    global _CURRENT_SHARD_SEED
    _CURRENT_SHARD_SEED = shard.get("seed")
    try:
        results: dict[str, object] = {}
        for task in shard["tasks"]:
            results[task["task_id"]] = execute_task(task["kind"], task["payload"])
        return results
    finally:
        _CURRENT_SHARD_SEED = None
