"""Fault-injection workers for exercising the sweep executor.

These live in the package (not in the test suite) so worker processes
can import them under any multiprocessing start method, and so users
validating a deployment of the runner — new machine, new Python, a
container — can smoke-test the retry/timeout/fallback machinery without
running a real study.  Every worker coordinates through the filesystem
(the payload names a scratch file), because retries may land in
different processes.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = [
    "flaky_payload",
    "subprocess_crash_payload",
    "sleep_payload",
    "attempt_count",
]


class InjectedFault(RuntimeError):
    """Raised by the fault-injection workers; never by real studies."""


def attempt_count(counter_file: str | Path) -> int:
    """How many times a flaky payload has been attempted so far."""
    try:
        return len(Path(counter_file).read_bytes())
    except FileNotFoundError:
        return 0


def flaky_payload(payload: dict) -> dict:
    """Fail the first ``payload["fail_times"]`` attempts, then succeed.

    Attempts are counted in ``payload["counter_file"]`` (one byte
    appended per call), shared across processes.
    """
    counter = Path(payload["counter_file"])
    with counter.open("ab") as fh:
        fh.write(b".")
    attempt = attempt_count(counter)
    if attempt <= int(payload["fail_times"]):
        raise InjectedFault(
            f"injected failure on attempt {attempt} (pid {os.getpid()})"
        )
    return {"attempts": attempt, "value": payload.get("value", "ok")}


def subprocess_crash_payload(payload: dict) -> dict:
    """Crash whenever executed outside ``payload["main_pid"]``.

    Models a shard that is poisonous to the worker pool but fine
    in-process — the case the executor's serial fallback exists for.
    """
    if os.getpid() != int(payload["main_pid"]):
        raise InjectedFault(f"injected subprocess crash (pid {os.getpid()})")
    return {"value": payload.get("value", "ok"), "pid": os.getpid()}


def sleep_payload(payload: dict) -> dict:
    """Sleep ``payload["seconds"]`` — a hung shard for timeout tests."""
    time.sleep(float(payload["seconds"]))
    return {"slept": float(payload["seconds"])}
