"""Scenario sharding: splitting a sweep into parallel units of work.

A sweep is a flat list of :class:`Task` objects — one per (scenario,
architecture) evaluation.  The planner groups contiguous runs of tasks
into :class:`Shard` objects sized for the worker pool.  Contiguity
matters: tasks that share an architecture/config sit next to each other
in every study's plan, so a contiguous shard lets the worker process
reuse its memoised topology/trace context instead of rebuilding it per
task.

Each shard carries an independent seed derived from the run's root seed
(:func:`repro.rng.derive_seed`), so any worker-local randomness is
reproducible by construction — re-running shard 7 of 32 alone draws the
same stream it drew inside the full sweep.  The studies shipped here
pre-draw their failure scenarios into the task payloads (that is what
makes parallel results bit-identical to serial), so the shard seed is
only consumed by workers that need *fresh* randomness, e.g. Monte Carlo
replicas.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field

from ..rng import derive_seed

__all__ = ["Task", "Shard", "plan_shards"]


@dataclass(frozen=True)
class Task:
    """One cacheable unit of work.

    ``kind`` names the worker (an alias from
    :data:`repro.runner.workers.WORKERS` or an explicit
    ``"module:function"`` path); ``payload`` must be JSON-serialisable —
    it is the cache key, the subprocess message, and the journal record
    all at once.
    """

    task_id: str
    kind: str
    payload: Mapping[str, object]

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ValueError("task_id must be non-empty")
        if not self.kind:
            raise ValueError(f"task {self.task_id}: kind must be non-empty")

    def to_dict(self) -> dict:
        return {
            "task_id": self.task_id,
            "kind": self.kind,
            "payload": dict(self.payload),
        }


@dataclass(frozen=True)
class Shard:
    """A contiguous slice of a sweep, executed as one subprocess call."""

    shard_id: int
    seed: int
    tasks: tuple[Task, ...] = field(default_factory=tuple)

    @property
    def size(self) -> int:
        return len(self.tasks)

    def to_dict(self) -> dict:
        """The pickle-friendly message sent to the worker process."""
        return {
            "shard_id": self.shard_id,
            "seed": self.seed,
            "tasks": [t.to_dict() for t in self.tasks],
        }


def plan_shards(
    tasks: Sequence[Task],
    jobs: int,
    root_seed: int = 0,
    shards_per_job: int = 4,
    max_shard_size: int | None = None,
) -> list[Shard]:
    """Split ``tasks`` into contiguous, independently-seeded shards.

    The default target is ``jobs * shards_per_job`` shards — enough
    slack that an unlucky slow shard does not straggle the whole pool,
    while keeping per-shard dispatch overhead negligible.  Shard sizes
    differ by at most one task; ``max_shard_size`` caps them (useful to
    bound the blast radius of a timeout, which retries a whole shard).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    if shards_per_job < 1:
        raise ValueError(f"shards_per_job must be >= 1, got {shards_per_job}")
    if max_shard_size is not None and max_shard_size < 1:
        raise ValueError(f"max_shard_size must be >= 1, got {max_shard_size}")
    seen: set[str] = set()
    for task in tasks:
        if task.task_id in seen:
            raise ValueError(f"duplicate task_id {task.task_id!r}")
        seen.add(task.task_id)
    if not tasks:
        return []

    target = min(len(tasks), jobs * shards_per_job)
    if max_shard_size is not None:
        target = max(target, -(-len(tasks) // max_shard_size))

    base, extra = divmod(len(tasks), target)
    shards: list[Shard] = []
    cursor = 0
    for shard_id in range(target):
        size = base + (1 if shard_id < extra else 0)
        chunk = tuple(tasks[cursor : cursor + size])
        cursor += size
        shards.append(
            Shard(
                shard_id=shard_id,
                seed=derive_seed(root_seed, "shard", shard_id),
                tasks=chunk,
            )
        )
    return shards
