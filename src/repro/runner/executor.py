"""The parallel sweep executor.

:class:`SweepRunner` takes a flat list of :class:`~repro.runner.shards.Task`
objects and returns every task's result, orchestrating four concerns the
serial experiment pipelines never had to think about:

* **caching** — each task is looked up in the content-addressed result
  cache first; only misses are executed, and every computed result is
  stored back (see :mod:`repro.runner.cache`);
* **parallelism** — misses are sharded
  (:func:`~repro.runner.shards.plan_shards`) and fanned out over a
  :class:`~concurrent.futures.ProcessPoolExecutor`;
* **fault tolerance** — a shard that raises, breaks its worker process,
  or exceeds the per-shard timeout is retried with exponential backoff
  up to ``max_retries`` times; a shard that keeps crashing degrades to
  one final *serial* attempt in the parent process (a crash-looping
  subprocess must not take the whole sweep down).  Only if that also
  fails is the shard marked failed and :class:`RunnerError` raised;
* **observability** — every step lands in the JSONL run journal, and a
  :class:`~repro.runner.summary.RunSummary` comes back with the results.

Determinism: the executor never reorders *results*.  Tasks carry stable
ids, results are keyed by id, and aggregation happens caller-side in
plan order — so a parallel run is bit-identical to a serial run of the
same plan, regardless of shard scheduling.
"""

from __future__ import annotations

import os
import time
from collections import deque
from collections.abc import Callable, Sequence
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field

from ..retry import RetryPolicy
from ..rng import derive_seed, ensure_rng
from .cache import MISS, NullCache, ResultCache, cache_key
from .journal import RunJournal
from .shards import Shard, Task, plan_shards
from .summary import RunSummary
from .workers import execute_shard

__all__ = ["SweepRunner", "RunResult", "RunnerError", "default_jobs"]

#: Scheduler poll interval while a per-shard timeout is armed.
_POLL_SECONDS = 0.05


def default_jobs() -> int:
    """Worker count when the caller does not choose: CPUs, capped at 8."""
    return max(1, min(os.cpu_count() or 1, 8))


class RunnerError(RuntimeError):
    """One or more shards failed every attempt, including serial fallback."""

    def __init__(self, failures: dict[int, str], summary: RunSummary) -> None:
        self.failures = failures
        self.summary = summary
        ids = ", ".join(str(i) for i in sorted(failures))
        first = failures[min(failures)]
        super().__init__(
            f"{len(failures)} shard(s) failed after retries (shards {ids}); "
            f"first error: {first}"
        )


@dataclass(frozen=True)
class RunResult:
    """Results by task id, plus the orchestration summary."""

    results: dict[str, object]
    summary: RunSummary

    def __getitem__(self, task_id: str) -> object:
        return self.results[task_id]


@dataclass
class _Counters:
    retries: int = 0
    serial_fallbacks: int = 0
    hits: int = 0
    misses: int = 0
    failures: dict[int, str] = field(default_factory=dict)


class SweepRunner:
    """Cached, fault-tolerant, parallel executor for scenario sweeps.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (or ``0``) runs everything in-process —
        same retry semantics, no pool.  Default: :func:`default_jobs`.
    cache:
        A :class:`ResultCache` (default: ``.repro-cache/`` under the
        current directory), a :class:`NullCache`, or ``None`` for the
        default.  Pass ``NullCache()`` for ``--no-cache`` behaviour.
    journal:
        A :class:`RunJournal`; default is an in-memory journal (counters
        and events, no file).
    shard_timeout:
        Seconds one shard attempt may run before it is declared hung and
        retried.  ``None`` disables the deadline.  A timed-out pool
        cannot reclaim its worker without rebuilding, so timeouts also
        recycle the pool (in-flight innocents are resubmitted without an
        attempt penalty).
    max_retries:
        Pool attempts per shard beyond the first, before the serial
        fallback.  Backoff before retry *i* is ``backoff_base * 2**i``.
        Shorthand for the equivalent ``retry_policy``.
    retry_policy:
        A :class:`~repro.retry.RetryPolicy` describing the retry ladder
        (attempts, backoff curve, optional jitter drawn deterministically
        from ``root_seed``).  Overrides ``max_retries``/``backoff_base``
        when given; the same policy class drives the ShareBackup
        controller's circuit-reconfiguration retries.
    """

    def __init__(
        self,
        jobs: int | None = None,
        cache: ResultCache | NullCache | None = None,
        journal: RunJournal | None = None,
        shard_timeout: float | None = None,
        max_retries: int = 2,
        backoff_base: float = 0.5,
        shards_per_job: int = 4,
        max_shard_size: int | None = None,
        root_seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ValueError(f"jobs must be >= 0, got {jobs}")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError(f"shard_timeout must be positive, got {shard_timeout}")
        if retry_policy is None:
            retry_policy = RetryPolicy(
                max_retries=max_retries, backoff_base=backoff_base
            )
        self.jobs = default_jobs() if jobs is None else max(1, jobs)
        self.cache = ResultCache() if cache is None else cache
        self.journal = journal if journal is not None else RunJournal(None)
        self.shard_timeout = shard_timeout
        self.retry_policy = retry_policy
        self.max_retries = retry_policy.max_retries
        self.backoff_base = retry_policy.backoff_base
        self.shards_per_job = shards_per_job
        self.max_shard_size = max_shard_size
        self.root_seed = root_seed
        self._sleep = sleep
        #: Jitter stream for backoff delays — derived from the root seed so
        #: a jittered retry schedule is still a pure function of the run.
        self._retry_rng = ensure_rng(derive_seed(root_seed, "runner-retry"))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(self, tasks: Sequence[Task], raise_on_failure: bool = True) -> RunResult:
        """Execute ``tasks``; returns every result keyed by task id."""
        started = time.perf_counter()
        counters = _Counters()
        self.journal.record("run_start", tasks=len(tasks), jobs=self.jobs)

        # Cache phase: split tasks into hits (done) and misses (to run).
        results: dict[str, object] = {}
        keys: dict[str, str] = {}
        misses: list[Task] = []
        for task in tasks:
            key = keys[task.task_id] = cache_key(task.kind, dict(task.payload))
            hit = self.cache.get(task.kind, key)
            if hit is not MISS:
                results[task.task_id] = hit
                counters.hits += 1
                self.journal.record("cache_hit", task_id=task.task_id, key=key)
            else:
                misses.append(task)
                counters.misses += 1
                self.journal.record("cache_miss", task_id=task.task_id, key=key)

        shards = plan_shards(
            misses,
            jobs=self.jobs,
            root_seed=self.root_seed,
            shards_per_job=self.shards_per_job,
            max_shard_size=self.max_shard_size,
        )
        if shards:
            if self.jobs == 1:
                self._run_serial(shards, results, counters)
            else:
                self._run_pool(shards, results, counters)

        # Store phase: persist every freshly-computed result.
        for task in misses:
            if task.task_id in results:
                self.cache.put(
                    task.kind, keys[task.task_id], dict(task.payload),
                    results[task.task_id],
                )
                self.journal.record("cache_store", task_id=task.task_id)

        summary = RunSummary(
            tasks=len(tasks),
            cache_hits=counters.hits,
            cache_misses=counters.misses,
            shards=len(shards),
            retries=counters.retries,
            serial_fallbacks=counters.serial_fallbacks,
            failed_shards=len(counters.failures),
            jobs=self.jobs,
            wall_clock=time.perf_counter() - started,
        )
        self.journal.record("run_finish", **summary.to_dict())
        if counters.failures and raise_on_failure:
            raise RunnerError(counters.failures, summary)
        return RunResult(results=results, summary=summary)

    # ------------------------------------------------------------------
    # serial execution (jobs=1, and the last-resort fallback)
    # ------------------------------------------------------------------

    def _run_serial(
        self,
        shards: Sequence[Shard],
        results: dict[str, object],
        counters: _Counters,
    ) -> None:
        for shard in shards:
            attempt = 0
            while True:
                self.journal.record(
                    "shard_start", shard_id=shard.shard_id, attempt=attempt,
                    tasks=shard.size, mode="serial",
                )
                t0 = time.perf_counter()
                try:
                    results.update(execute_shard(shard.to_dict()))
                    self.journal.record(
                        "shard_finish", shard_id=shard.shard_id, attempt=attempt,
                        wall_clock=time.perf_counter() - t0, mode="serial",
                    )
                    break
                except Exception as exc:
                    if attempt >= self.max_retries:
                        counters.failures[shard.shard_id] = repr(exc)
                        self.journal.record(
                            "shard_failed", shard_id=shard.shard_id,
                            attempt=attempt, error=repr(exc),
                        )
                        break
                    self._backoff(shard, attempt, exc, counters)
                    attempt += 1

    def _serial_fallback(
        self,
        shard: Shard,
        results: dict[str, object],
        counters: _Counters,
    ) -> None:
        """Final in-process attempt for a shard the pool cannot run."""
        counters.serial_fallbacks += 1
        self.journal.record(
            "shard_serial_fallback", shard_id=shard.shard_id, tasks=shard.size,
        )
        t0 = time.perf_counter()
        try:
            results.update(execute_shard(shard.to_dict()))
            self.journal.record(
                "shard_finish", shard_id=shard.shard_id, attempt=-1,
                wall_clock=time.perf_counter() - t0, mode="serial-fallback",
            )
        except Exception as exc:
            counters.failures[shard.shard_id] = repr(exc)
            self.journal.record(
                "shard_failed", shard_id=shard.shard_id, attempt=-1,
                error=repr(exc),
            )

    def _backoff(
        self, shard: Shard, attempt: int, exc: Exception, counters: _Counters
    ) -> None:
        delay = self.retry_policy.delay(attempt, rng=self._retry_rng)
        counters.retries += 1
        self.journal.record(
            "shard_retry", shard_id=shard.shard_id, attempt=attempt,
            error=repr(exc), backoff=delay,
        )
        self._sleep(delay)

    # ------------------------------------------------------------------
    # pool execution
    # ------------------------------------------------------------------

    def _run_pool(
        self,
        shards: Sequence[Shard],
        results: dict[str, object],
        counters: _Counters,
    ) -> None:
        queue: deque[tuple[Shard, int]] = deque((s, 0) for s in shards)
        # future -> (shard, attempt, submitted_at)
        inflight: dict[Future, tuple[Shard, int, float]] = {}
        pool = ProcessPoolExecutor(max_workers=self.jobs)
        try:
            while queue or inflight:
                while queue and len(inflight) < self.jobs * 2:
                    shard, attempt = queue.popleft()
                    self.journal.record(
                        "shard_start", shard_id=shard.shard_id, attempt=attempt,
                        tasks=shard.size, mode="pool",
                    )
                    future = pool.submit(execute_shard, shard.to_dict())
                    inflight[future] = (shard, attempt, time.perf_counter())

                timeout = _POLL_SECONDS if self.shard_timeout else None
                done, _ = wait(
                    list(inflight), timeout=timeout, return_when=FIRST_COMPLETED
                )

                rebuild = False
                for future in done:
                    shard, attempt, t0 = inflight.pop(future)
                    try:
                        results.update(future.result())
                        self.journal.record(
                            "shard_finish", shard_id=shard.shard_id,
                            attempt=attempt,
                            wall_clock=time.perf_counter() - t0, mode="pool",
                        )
                    # Audited catch-all: journaling is delegated — every
                    # path through _retry_or_fallback records the outcome
                    # (shard_retry, shard_serial_fallback, or shard_failed).
                    except Exception as exc:  # repro: noqa[EXC001]
                        if isinstance(exc, BrokenExecutor):
                            rebuild = True
                        self._retry_or_fallback(
                            shard, attempt, exc, queue, results, counters
                        )

                if self.shard_timeout is not None:
                    now = time.perf_counter()
                    expired = [
                        f for f, (_, _, t0) in inflight.items()
                        if now - t0 > self.shard_timeout
                    ]
                    for future in expired:
                        shard, attempt, t0 = inflight.pop(future)
                        future.cancel()
                        rebuild = True  # its worker is still busy; recycle
                        self._retry_or_fallback(
                            shard, attempt,
                            TimeoutError(
                                f"shard {shard.shard_id} exceeded "
                                f"{self.shard_timeout}s"
                            ),
                            queue, results, counters,
                        )

                if rebuild:
                    # Resubmit in-flight innocents with no attempt penalty.
                    for future, (shard, attempt, _) in inflight.items():
                        future.cancel()
                        queue.append((shard, attempt))
                    inflight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = ProcessPoolExecutor(max_workers=self.jobs)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _retry_or_fallback(
        self,
        shard: Shard,
        attempt: int,
        exc: Exception,
        queue: deque[tuple[Shard, int]],
        results: dict[str, object],
        counters: _Counters,
    ) -> None:
        if attempt < self.max_retries:
            self._backoff(shard, attempt, exc, counters)
            queue.append((shard, attempt + 1))
        else:
            self._serial_fallback(shard, results, counters)
