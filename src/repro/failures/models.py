"""Failure statistics used across the reproduction.

The paper grounds its argument in the measurement study of Gill et al.
(SIGCOMM'11) [11], citing three facts repeatedly:

* failures are rare — "most devices have over 99.99% availability" and
  the switch failure rate is ~0.01%;
* failures are short — "failures usually last for only a few minutes",
  "most failures last for less than 5 minutes";
* failures are independent.

This module turns those facts into samplers and derived quantities (MTBF
from availability + MTTR, expected concurrent failures per failure group)
that Section 5.1's capacity analysis and the failure-injection benchmarks
share.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["FailureModel", "DEFAULT_FAILURE_MODEL"]


@dataclass(frozen=True)
class FailureModel:
    """Device-level failure statistics.

    ``availability`` is the long-run fraction of time a device is up;
    ``median_downtime`` parameterises the repair-time distribution
    (log-normal, matching the "a few minutes, occasionally much longer"
    shape of [11]).
    """

    availability: float = 0.9999
    median_downtime: float = 120.0  # seconds
    downtime_sigma: float = 0.8  # log-normal spread; P(>5 min) small

    def __post_init__(self) -> None:
        if not 0 < self.availability < 1:
            raise ValueError(f"availability must be in (0,1), got {self.availability}")
        if self.median_downtime <= 0:
            raise ValueError("median_downtime must be positive")

    @property
    def unavailability(self) -> float:
        """The paper's "0.01% switch failure rate" for the default model."""
        return 1.0 - self.availability

    @property
    def mean_downtime(self) -> float:
        """Mean of the log-normal repair time."""
        return self.median_downtime * math.exp(self.downtime_sigma**2 / 2.0)

    @property
    def mtbf(self) -> float:
        """Mean time between failures implied by availability and MTTR."""
        return self.mean_downtime * self.availability / self.unavailability

    def sample_downtime(self, rng: np.random.Generator) -> float:
        return float(
            rng.lognormal(
                mean=math.log(self.median_downtime), sigma=self.downtime_sigma
            )
        )

    def concurrent_failure_probability(self, group_size: int, spares: int) -> float:
        """Probability that more than ``spares`` of ``group_size`` independent
        devices are down simultaneously (binomial tail).

        This is the quantity behind Section 5.1's claim that a small ``n``
        suffices: with p = 1e-4 and group size k/2 = 24, even n = 1 leaves
        a ~2.6e-6 residual risk per group.
        """
        p = self.unavailability
        tail = 0.0
        for j in range(spares + 1, group_size + 1):
            tail += math.comb(group_size, j) * p**j * (1 - p) ** (group_size - j)
        return tail


DEFAULT_FAILURE_MODEL = FailureModel()
