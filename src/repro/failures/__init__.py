"""Failure substrate: statistics from [Gill'11] and scenario injection."""

from .injector import FailureInjector, FailureScenario
from .models import DEFAULT_FAILURE_MODEL, FailureModel

__all__ = [
    "DEFAULT_FAILURE_MODEL",
    "FailureInjector",
    "FailureModel",
    "FailureScenario",
]
