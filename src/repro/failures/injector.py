"""Failure injection: sampling and applying failure scenarios.

The failure study (Section 2.2) needs two sampling modes:

* **rate sweeps** for Figures 1(a)/(b) — fail a given *fraction* of the
  switch (or link) population and measure the affected flows/coflows;
* **single failures** for Figure 1(c) — "we create only one link or node
  failure at a time", then replay a 5-minute trace partition against it.

A :class:`FailureScenario` is a value object so experiments can apply,
measure, and cleanly revert it; scenarios compose (concurrent failures
for the Section 5.1 capacity benchmarks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from ..rng import ensure_rng
from ..topology.base import NodeKind, Topology

__all__ = ["FailureScenario", "FailureInjector"]


@dataclass(frozen=True)
class FailureScenario:
    """An immutable set of elements to fail together."""

    nodes: tuple[str, ...] = ()
    links: tuple[int, ...] = ()

    @property
    def size(self) -> int:
        return len(self.nodes) + len(self.links)

    def apply(self, topo: Topology) -> None:
        for name in self.nodes:
            topo.fail_node(name)
        for link_id in self.links:
            topo.fail_link(link_id)

    def revert(self, topo: Topology) -> None:
        for name in self.nodes:
            topo.restore_node(name)
        for link_id in self.links:
            topo.restore_link(link_id)

    def describe(self, topo: Topology) -> str:
        parts = list(self.nodes)
        parts += [
            f"{topo.links[l].a}--{topo.links[l].b}" for l in self.links
        ]
        return ", ".join(parts) if parts else "(no failures)"


class FailureInjector:
    """Seeded sampler of failure scenarios over one topology.

    ``switch_kinds`` restricts which switch layers node failures may hit
    (the CCT study keeps edge switches out: a dead edge switch severs its
    single-homed rack under *every* rerouting scheme, so including it
    measures wiring, not recovery policy — see the Figure 1(c) bench).
    ``link_scope`` is ``"all"`` or ``"switch"`` (exclude host links).

    ``seed`` is anything :func:`repro.rng.ensure_rng` accepts — an int,
    a ``numpy.random.Generator``, or a stdlib :class:`random.Random` —
    so callers (and sweep shards) thread one explicit stream end to end;
    the injector never touches module-global randomness.
    """

    def __init__(
        self,
        topo: Topology,
        seed: int | np.random.Generator | random.Random = 0,
        switch_kinds: tuple[NodeKind, ...] = (
            NodeKind.EDGE,
            NodeKind.AGGREGATION,
            NodeKind.CORE,
        ),
        link_scope: str = "all",
    ) -> None:
        if link_scope not in ("all", "switch"):
            raise ValueError(f"link_scope must be 'all' or 'switch', got {link_scope}")
        self.topo = topo
        self.rng = ensure_rng(seed)
        self._switch_pool = sorted(
            n.name
            for n in topo.nodes.values()
            if n.kind in switch_kinds and not n.is_backup
        )
        self._link_pool = sorted(
            link.link_id
            for link in topo.links.values()
            if link_scope == "all" or self._is_switch_link(link)
        )
        if not self._switch_pool:
            raise ValueError("no switches eligible for failure injection")

    def _is_switch_link(self, link) -> bool:
        return (
            self.topo.nodes[link.a].kind is not NodeKind.HOST
            and self.topo.nodes[link.b].kind is not NodeKind.HOST
        )

    # ------------------------------------------------------------------
    # sampling
    # ------------------------------------------------------------------

    @property
    def switch_population(self) -> int:
        return len(self._switch_pool)

    @property
    def link_population(self) -> int:
        return len(self._link_pool)

    def node_failures_at_rate(self, rate: float) -> FailureScenario:
        """Fail ``round(rate × population)`` distinct switches.

        ``rate`` is the x-axis of Figure 1(a).  A non-zero rate always
        fails at least one switch, so sweeps starting near zero behave.
        """
        count = self._count_for(rate, len(self._switch_pool))
        picks = self.rng.choice(len(self._switch_pool), size=count, replace=False)
        return FailureScenario(
            nodes=tuple(sorted(self._switch_pool[i] for i in picks))
        )

    def link_failures_at_rate(self, rate: float) -> FailureScenario:
        """Fail ``round(rate × population)`` distinct links (Figure 1(b))."""
        count = self._count_for(rate, len(self._link_pool))
        picks = self.rng.choice(len(self._link_pool), size=count, replace=False)
        return FailureScenario(links=tuple(sorted(self._link_pool[i] for i in picks)))

    def single_node_failure(self) -> FailureScenario:
        """One random switch failure (Figure 1(c) node case)."""
        name = self._switch_pool[int(self.rng.integers(len(self._switch_pool)))]
        return FailureScenario(nodes=(name,))

    def single_link_failure(self) -> FailureScenario:
        """One random link failure (Figure 1(c) link case)."""
        link_id = self._link_pool[int(self.rng.integers(len(self._link_pool)))]
        return FailureScenario(links=(link_id,))

    def concurrent_node_failures(self, count: int) -> FailureScenario:
        """``count`` simultaneous switch failures (Section 5.1 capacity)."""
        if count > len(self._switch_pool):
            raise ValueError(
                f"cannot fail {count} of {len(self._switch_pool)} switches"
            )
        picks = self.rng.choice(len(self._switch_pool), size=count, replace=False)
        return FailureScenario(
            nodes=tuple(sorted(self._switch_pool[i] for i in picks))
        )

    @staticmethod
    def _count_for(rate: float, population: int) -> int:
        if not 0 <= rate <= 1:
            raise ValueError(f"failure rate must be in [0,1], got {rate}")
        if rate == 0:
            return 0
        return max(1, round(rate * population))
